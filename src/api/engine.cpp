#include "src/api/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cache/plan_cache.h"
#include "src/cache/request_key.h"
#include "src/calib/repair.h"
#include "src/calib/table.h"
#include "src/graph/memory_model.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/place/fleet_planner.h"

namespace karma::api {

using Clock = CancelToken::Clock;

// ---------------------------------------------------------------------------
// Planning internals (moved here from session.cpp when Session became a
// handle): request -> artifact, interruptible, with incremental best-so-far
// publication for the service layer's partial results.
// ---------------------------------------------------------------------------

namespace {

/// Leading batch dimension of the planned model (first shaped layer).
std::int64_t batch_of(const graph::Model& model) {
  for (const auto& layer : model.layers()) {
    if (layer.out_shape.rank() > 0) return layer.out_shape.batch();
    if (layer.in_shape.rank() > 0) return layer.in_shape.batch();
  }
  return 1;
}

/// Index of the finest-granularity candidate block containing `layer`.
int block_containing(const graph::Model& model, int layer) {
  const auto cuts = core::candidate_cut_points(model);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
    if (cuts[i] <= layer && layer < cuts[i + 1]) return static_cast<int>(i);
  return -1;
}

/// Provenance shell of the artifact; the planner output fills the rest.
Plan artifact_base(const PlanRequest& request, Bytes reserved_host) {
  Plan artifact;
  artifact.model_name = request.model.name();
  artifact.batch = batch_of(request.model);
  artifact.model_layers = static_cast<std::int64_t>(request.model.num_layers());
  artifact.device = request.device;
  artifact.reserved_host_bytes = reserved_host;
  return artifact;
}

void fill_single(Plan& artifact, core::PlanResult r) {
  artifact.schedule = std::move(r.plan);
  artifact.policies = std::move(r.policies);
  artifact.trace = std::move(r.trace);
  artifact.iteration_time = r.iteration_time;
  artifact.first_iteration_time = r.iteration_time;
  artifact.occupancy = r.occupancy;
  artifact.search_stats = r.search;
}

void fill_distributed(Plan& artifact, core::DistributedResult r) {
  artifact.schedule = std::move(r.plan);
  artifact.policies = std::move(r.policies);
  artifact.trace = std::move(r.trace);
  artifact.iteration_time = r.iteration_time;
  artifact.first_iteration_time = r.first_iteration_time;
  artifact.occupancy = artifact.trace.occupancy();
  artifact.distributed = true;
  artifact.weights_resident = r.weights_resident;
  artifact.exchange = std::move(r.exchange);
}

/// Maps a fleet planning result onto the unified artifact: the scalar
/// fields describe the STRAGGLER node (its device, schedule, trace — so
/// simulate() replays the binding rank), iteration_time is the fleet max
/// including the exposed exchange and CPU-update tails, and the full
/// per-node story rides in Plan::placement.
void fill_fleet(Plan& artifact, place::FleetPlanResult r,
                const place::FleetSpec& fleet) {
  const std::size_t straggler = static_cast<std::size_t>(r.straggler);
  place::NodePlanResult& leg = r.nodes[straggler];
  artifact.device = fleet.nodes[straggler].device;
  artifact.schedule = std::move(leg.result.plan);
  artifact.policies = std::move(leg.result.policies);
  artifact.trace = std::move(leg.result.trace);
  artifact.occupancy = leg.result.occupancy;
  artifact.search_stats = leg.result.search;
  artifact.iteration_time = r.iteration_time;
  artifact.first_iteration_time = r.iteration_time;
  artifact.reserved_host_bytes =
      r.placement.nodes[straggler].reserved_host_bytes;
  artifact.distributed = true;
  artifact.weights_resident = true;
  artifact.exchange = std::move(leg.exchange);
  artifact.placement = std::move(r.placement);
}

/// Runs the planners for `request` with the fully derived `options` (the
/// optimizer reserve already charged) and wraps the result in the Plan
/// artifact. Pure planning — no cache, no diagnosis: infeasibility
/// surfaces as the planners' std::runtime_error, a tripped `control` as
/// core::SearchInterrupted. `on_best` (optional) receives a full artifact
/// snapshot at every new incumbent best, so an interrupted search can
/// still hand back its best-so-far plan.
Plan plan_uncached(const PlanRequest& request,
                   const core::PlannerOptions& options, Bytes reserved_host,
                   const CancelToken& control = {},
                   const std::function<void(Plan&&)>& on_best = {},
                   const Plan* repair_seed = nullptr) {
  const Plan base = artifact_base(request, reserved_host);
  Plan artifact = base;
  if (request.fleet) {
    // Heterogeneous fleet (DESIGN.md §16). `options` carries the caller's
    // reserve inflated with the WHOLE model's optimizer state — correct
    // for a symmetric rank, wrong per fleet node, where ownership decides
    // how much state each node pins. plan_fleet derives each node's
    // reserve from the base reserve plus its owned shards, so hand it
    // the un-inflated base and the optimizer's sizing function instead.
    // No incremental on_best: per-node searches compose only at the end,
    // and a half-composed fleet plan would misstate the straggler.
    place::FleetPlanOptions fleet_options;
    fleet_options.planner = options;
    fleet_options.planner.schedule.reserved_host_bytes =
        request.planner.schedule.reserved_host_bytes;
    fleet_options.placement.base_reserved_host =
        request.planner.schedule.reserved_host_bytes;
    fleet_options.placement.optimizer_state_bytes =
        [optimizer = request.optimizer](Bytes param_bytes) {
          return optimizer.host_state_bytes(param_bytes);
        };
    place::FleetPlanResult r =
        place::plan_fleet(request.model, *request.fleet, fleet_options,
                          control);
    fill_fleet(artifact, std::move(r), *request.fleet);
  } else if (request.distributed) {
    core::DistributedOptions opts = *request.distributed;
    // One set of planner knobs: request.planner (with the optimizer
    // reserve) supersedes the copy embedded in DistributedOptions.
    opts.planner = options;
    std::function<void(const core::DistributedResult&)> publish;
    if (on_best)
      publish = [&](const core::DistributedResult& r) {
        Plan snapshot = base;
        fill_distributed(snapshot, r);
        on_best(std::move(snapshot));
      };
    core::DistributedResult r = core::plan_data_parallel(
        request.model, request.device, opts, control, publish);
    fill_distributed(artifact, std::move(r));
  } else {
    // Calib repair (DESIGN.md §13): a plan cached under a superseded
    // calibration seeds a warm-start search (KarmaPlanner::plan_from) with
    // a reduced anneal budget instead of the cold Opt-1 enumeration. The
    // seed must structurally match this request (same model, so equal
    // block/policy counts); anything else degrades to the cold search.
    const bool seeded =
        repair_seed && !request.distributed && !repair_seed->distributed &&
        !repair_seed->policies.empty() &&
        repair_seed->blocks().size() == repair_seed->policies.size() &&
        repair_seed->model_layers ==
            static_cast<std::int64_t>(request.model.num_layers());
    core::PlannerOptions effective = options;
    if (seeded)
      effective.anneal_iterations =
          calib::repair_anneal_budget(options.anneal_iterations);
    const core::KarmaPlanner planner(request.model, request.device, effective);
    std::function<void(const core::PlanResult&)> publish;
    if (on_best)
      publish = [&](const core::PlanResult& r) {
        Plan snapshot = base;
        fill_single(snapshot, r);
        on_best(std::move(snapshot));
      };
    core::PlanResult r =
        seeded ? planner.plan_from(repair_seed->blocks(),
                                   repair_seed->policies, control, publish)
               : planner.plan(control, publish);
    fill_single(artifact, std::move(r));
  }
  return artifact;
}

/// Cache context for the feasibility bisection: successful probes are
/// first-class plan artifacts, keyed and stored like any other plan, so
/// repeated diagnoses reuse intermediate candidates instead of
/// re-planning them. Read-only policy lives in the PlanCache itself
/// (insert is a no-op there) — one authority, no duplicated guards.
struct ProbeContext {
  cache::PlanCache* cache = nullptr;  ///< null = uncached probing
  int candidates = 0;  ///< probe plans evaluated (cache hits included)
  int cache_hits = 0;  ///< probes answered by the cache
};

/// Largest batch at which `request` plans successfully, by bisection with
/// a cheap planner configuration (no annealing — feasibility, not polish).
/// Returns -1 when nothing fits or the model has no batch dimension. A
/// tripped `control` truncates the bisection (best-effort bracket so far);
/// an interrupt *inside* a probe search tunnels out as SearchInterrupted.
std::int64_t bisect_feasible_batch(const PlanRequest& request,
                                   Bytes reserved_host, ProbeContext& probe,
                                   const CancelToken& control) {
  const std::int64_t batch = batch_of(request.model);
  if (batch <= 1) return -1;
  const auto feasible = [&](std::int64_t b) {
    ++probe.candidates;
    // The probe is the same request re-batched with the anneal budget
    // zeroed — a self-consistent PlanRequest, so its cached artifact is
    // exactly what a plan() for it would produce. The optimizer reserve
    // carries over unchanged: weights are batch-independent.
    PlanRequest probe_request = request;
    probe_request.model = request.model.with_batch_size(b);
    probe_request.planner.anneal_iterations = 0;
    probe_request.probe_feasible_batch = false;
    core::PlannerOptions probe_options = probe_request.planner;
    probe_options.schedule.reserved_host_bytes = reserved_host;

    std::optional<cache::RequestKey> key;
    if (probe.cache) {
      key = cache::request_key(probe_request);
      if (probe.cache->lookup(*key)) {
        ++probe.cache_hits;
        return true;  // only successful probes are ever cached
      }
    }
    try {
      const Plan planned =
          plan_uncached(probe_request, probe_options, reserved_host, control);
      if (probe.cache) probe.cache->insert(*key, planned);
      return true;
    } catch (const std::runtime_error&) {
      // The planners' documented infeasibility channel. logic_error and
      // friends are engine/plan invariant violations — let them propagate
      // rather than counting a crashed probe as an infeasible batch.
      return false;
    }
  };
  if (control.should_stop()) return -1;
  if (!feasible(1)) return -1;
  std::int64_t lo = 1, hi = batch;  // feasible(lo), !feasible(hi)
  while (hi - lo > 1) {
    if (control.should_stop()) break;  // report the bracket reached so far
    const std::int64_t mid = lo + (hi - lo) / 2;
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

/// Static feasibility analysis of an infeasible request: names the failing
/// component and quantifies per-tier shortfalls. `root_message` carries the
/// planner's own exception text as context; `probe` supplies (and records)
/// the cache context of the nearest-feasible-batch bisection.
PlanError diagnose(const PlanRequest& request, Bytes reserved_host,
                   const std::string& root_message, ProbeContext& probe,
                   const CancelToken& control) {
  const graph::Model& model = request.model;
  const sim::DeviceSpec& device = request.device;
  PlanError error;
  error.model = model.name();
  error.device = device.name;
  error.message = root_message;

  const int n = static_cast<int>(model.num_layers());
  const graph::LayerMemory total = graph::range_memory(model, 0, n);
  const Bytes weights = total.weights + total.weight_grads;
  const Bytes capacity = device.memory_capacity;

  if (request.distributed) {
    // The distributed planner swaps weights per block and splits its
    // budget differently per regime; the single-GPU residency analysis
    // below would blame an innocent layer. What *is* statically decidable
    // is the pipeline's shard residency (DESIGN.md §9): the per-rank
    // master weight shards pinned in host DRAM plus the worst case where
    // every block's gradient shard is in flight between its gradient-out
    // and its update. When that alone (plus the optimizer reserve)
    // overflows a bounded host tier, no blocking can admit — report the
    // per-tier shortfall instead of a bare search failure.
    error.code = PlanErrorCode::kNoFeasibleBlocking;
    if (device.host_capacity > 0) {
      // No blocking exists at diagnosis time, so charge the whole model
      // as one block — the lower bound of the per-block rounding every
      // candidate's admission used.
      sim::BlockCost whole;
      whole.param_bytes = total.weights;
      whole.grad_bytes = total.weight_grads;
      const core::ShardResidency shards = core::ShardResidency::from_costs(
          {whole}, request.distributed->weight_shard_fraction);
      const Bytes required = reserved_host + shards.total();
      if (required > device.host_capacity) {
        error.code = PlanErrorCode::kTierOverflow;
        error.message =
            "distributed shard residency alone exceeds host DRAM (" +
            format_bytes(shards.pinned_weight_bytes) +
            " pinned weight shards + " +
            format_bytes(shards.transient_gradient_bytes) +
            " in-flight gradients" +
            (reserved_host > 0
                 ? " + " + format_bytes(reserved_host) + " optimizer reserve"
                 : std::string()) +
            "); shrink weight_shard_fraction (more ZeRO partitioning) or "
            "provision more DRAM";
        error.deficits.push_back(
            {tier::Tier::kHost, required, device.host_capacity});
      }
    }
  } else if (weights >= capacity) {
    // The distributed planner swaps weights per block; single-GPU keeps
    // them resident, so this is a hard wall.
    error.code = PlanErrorCode::kWeightsExceedDevice;
    error.message = "resident weights + gradients alone exceed device HBM; "
                    "consider the distributed (weight-swapping) pipeline";
    error.deficits.push_back(
        {tier::Tier::kDevice, weights, capacity});
  } else {
    const Bytes act_budget = capacity - std::min(weights, capacity);
    // A layer whose activations cannot fit the budget breaks every
    // blocking: its enclosing block retains at least this much during the
    // block's backward, whether swapped, resident, or recomputed.
    int worst_layer = -1;
    Bytes worst_act = 0;
    for (const auto& layer : model.layers()) {
      const Bytes act =
          graph::layer_memory(layer, model.dtype_bytes(), {},
                              model.activation_memory_scale())
              .activations;
      if (act > act_budget && act > worst_act) {
        worst_layer = layer.id;
        worst_act = act;
      }
    }
    if (worst_layer >= 0) {
      error.code = PlanErrorCode::kLayerExceedsDevice;
      error.message = "layer '" + model.layer(worst_layer).name +
                      "' alone overflows the device activation budget";
      error.violating_layer = worst_layer;
      error.violating_block = block_containing(model, worst_layer);
      error.deficits.push_back(
          {tier::Tier::kDevice, weights + worst_act, capacity});
    } else if (device.host_capacity > 0) {
      // Bounded offload tiers: does the spill demand (plus the optimizer
      // reserve pinned in DRAM) fit the hierarchy at all?
      const Bytes spill =
          graph::offload_footprint(model, act_budget).offloaded_activations;
      const Bytes host_take =
          std::max<Bytes>(0, device.host_capacity - reserved_host);
      const Bytes overflow = std::max<Bytes>(0, spill - host_take);
      const Bytes nvme_capacity = device.has_nvme() ? device.nvme_capacity : 0;
      if (overflow > nvme_capacity) {
        error.code = PlanErrorCode::kTierOverflow;
        error.message =
            "offload demand exceeds the storage hierarchy" +
            std::string(reserved_host > 0
                            ? " (host tier pre-charged with optimizer state)"
                            : "");
        error.deficits.push_back({tier::Tier::kHost, reserved_host + spill,
                                  device.host_capacity});
        error.deficits.push_back(
            {tier::Tier::kNvme, overflow, nvme_capacity});
      } else {
        error.code = PlanErrorCode::kNoFeasibleBlocking;
      }
    } else {
      error.code = PlanErrorCode::kNoFeasibleBlocking;
    }
  }

  if (error.code == PlanErrorCode::kNoFeasibleBlocking &&
      error.message.empty())
    error.message =
        "no deadlock-free blocking found (block granularity is limited by "
        "clean cut density; see ROADMAP sub-layer blocking)";

  if (request.probe_feasible_batch) {
    error.nearest_feasible_batch =
        bisect_feasible_batch(request, reserved_host, probe, control);
    error.probe_candidates = probe.candidates;
    error.probe_cache_hits = probe.cache_hits;
  }
  return error;
}

/// Host-reserve derivation shared by every entry path: the optimizer's
/// host residency ADDS to any reserve the caller already put on the
/// planner options (distinct host-pinning consumers compose).
Bytes derive_reserved_host(const PlanRequest& request) {
  const graph::LayerMemory total = graph::range_memory(
      request.model, 0, static_cast<int>(request.model.num_layers()));
  return request.planner.schedule.reserved_host_bytes +
         request.optimizer.host_state_bytes(total.weights);
}

std::optional<PlanError> validate(const PlanRequest& request) {
  if (request.model.num_layers() == 0) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message = "request has an empty model";
    e.device = request.device.name;
    return e;
  }
  if (request.device.memory_capacity <= 0) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message = "device has no memory capacity";
    e.model = request.model.name();
    return e;
  }
  if (request.distributed && request.distributed->num_gpus < 2) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message = "distributed planning needs num_gpus >= 2";
    e.model = request.model.name();
    e.device = request.device.name;
    return e;
  }
  if (request.fleet && request.distributed) {
    PlanError e;
    e.code = PlanErrorCode::kInvalidRequest;
    e.message =
        "fleet and distributed are mutually exclusive: a FleetSpec IS the "
        "data-parallel topology (symmetric ranks use `distributed`)";
    e.model = request.model.name();
    e.device = request.device.name;
    return e;
  }
  if (request.fleet) {
    const std::string why = place::validate_fleet(*request.fleet);
    if (!why.empty()) {
      PlanError e;
      e.code = PlanErrorCode::kInvalidRequest;
      e.message = "invalid fleet: " + why;
      e.model = request.model.name();
      return e;
    }
  }
  return std::nullopt;
}

/// The structured outcome of an interrupted search for one waiter.
PlanError interrupted_error(StopReason reason, const PlanRequest& request) {
  PlanError e;
  e.code = reason == StopReason::kCancelled ? PlanErrorCode::kCancelled
                                            : PlanErrorCode::kDeadline;
  e.model = request.model.name();
  e.device = request.device.name;
  switch (reason) {
    case StopReason::kCancelled:
      e.message = "search cancelled before completion";
      break;
    case StopReason::kDeadline:
      e.message = "search deadline expired before completion";
      break;
    case StopReason::kBudget:
      e.message = "candidate budget exhausted before completion";
      break;
    case StopReason::kNone:
      e.message = "search interrupted";
      break;
  }
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// Flight + future state
// ---------------------------------------------------------------------------

namespace detail {

using Outcome = Expected<Plan, PlanError>;

/// One in-flight search shared by every waiter with the same RequestKey.
/// All mutable fields are guarded by `mu`; the CancelToken's own state is
/// atomic and is the only channel the search thread reads.
struct Flight {
  cache::RequestKey key;
  bool listed = false;  ///< registered in the engine's single-flight map
  PlanRequest request;  ///< content-identical for every waiter, by key
  core::PlannerOptions planner_options;  ///< reserve already charged
  Bytes reserved_host = 0;
  /// OR over the waiting set's probe_feasible_batch (the knob is excluded
  /// from RequestKey, so waiters of one flight may disagree): like
  /// limits, the flight honors the most demanding subscriber — anyone
  /// asking for the bisection gets it. Guarded by `mu`.
  bool want_probe = false;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  /// The last waiter left and the search was cancelled outright. Sticky
  /// (CancelToken::cancel has no undo): new arrivals must NOT join an
  /// abandoned flight — they would inherit a kCancelled outcome they
  /// never asked for — and start a fresh one instead.
  bool abandoned = false;
  std::shared_ptr<const Outcome> outcome;
  CancelToken control = CancelToken::make();
  std::shared_ptr<const Plan> best;  ///< best-so-far artifact snapshot
  /// Warm-start seed for calib repair: the same request's artifact cached
  /// under a superseded calibration hash (DESIGN.md §13). Set once at
  /// flight creation (immutable afterwards), null for cold searches.
  std::shared_ptr<const Plan> repair_seed;

  // Interest registry: the search's effective deadline and candidate
  // budget are the LOOSEST over registered waiters — a service must not
  // let one impatient tenant truncate another's search. When the last
  // waiter leaves, the search is cancelled outright.
  int interested = 0;
  int unbounded_deadline = 0;
  std::multiset<Clock::time_point> deadlines;
  int unbounded_budget = 0;
  /// ABSOLUTE candidate-count thresholds (join-time count + the waiter's
  /// budget), not raw budgets: a budget meters candidates on the
  /// waiter's watch, so the loosest effective limit is the largest
  /// threshold — mixing in raw budgets would hand late joiners an expiry
  /// they never subscribed to.
  std::multiset<std::int64_t> budget_thresholds;

  static constexpr std::int64_t kUnboundedThreshold =
      std::numeric_limits<std::int64_t>::max();

  void refresh_limits_locked() {
    control.set_deadline(unbounded_deadline > 0 || deadlines.empty()
                             ? Clock::time_point::max()
                             : *deadlines.rbegin());
    control.set_max_candidates(
        unbounded_budget > 0 || budget_thresholds.empty()
            ? 0
            : *budget_thresholds.rbegin());
  }

  /// Returns the waiter's absolute budget threshold (kUnboundedThreshold
  /// when `max_candidates` <= 0) — the caller keeps it for deregistration
  /// and for its own waiter-local budget check.
  std::int64_t register_waiter_locked(Clock::time_point deadline,
                                      std::int64_t max_candidates) {
    ++interested;
    if (deadline == Clock::time_point::max())
      ++unbounded_deadline;
    else
      deadlines.insert(deadline);
    std::int64_t threshold = kUnboundedThreshold;
    const std::int64_t counted = control.candidates();
    if (max_candidates <= 0 ||
        max_candidates > kUnboundedThreshold - counted) {
      // <= 0 is the documented unbounded; a budget so large the absolute
      // threshold would overflow is treated the same (saturate, don't
      // wrap into an instant expiry).
      ++unbounded_budget;
    } else {
      threshold = counted + max_candidates;
      budget_thresholds.insert(threshold);
    }
    refresh_limits_locked();
    return threshold;
  }

  void deregister_waiter_locked(Clock::time_point deadline,
                                std::int64_t budget_threshold) {
    --interested;
    if (deadline == Clock::time_point::max()) {
      --unbounded_deadline;
    } else {
      const auto it = deadlines.find(deadline);
      if (it != deadlines.end()) deadlines.erase(it);
    }
    if (budget_threshold == kUnboundedThreshold) {
      --unbounded_budget;
    } else {
      const auto it = budget_thresholds.find(budget_threshold);
      if (it != budget_thresholds.end()) budget_thresholds.erase(it);
    }
    if (interested == 0 && !done) {
      abandoned = true;
      control.cancel();  // nobody wants the result: stop the search
    } else {
      refresh_limits_locked();
    }
  }
};

/// Per-caller view of one submission. When `flight` is null the outcome
/// was settled at submission (cache hit / invalid request) and is
/// immutable; otherwise `outcome` (the caller-local settlement: cancel or
/// deadline) and `registered` are guarded by flight->mu.
struct FutureState {
  std::shared_ptr<Engine> engine;  ///< keeps the service alive
  std::shared_ptr<Flight> flight;
  Clock::time_point deadline = Clock::time_point::max();  ///< this caller's
  /// Absolute candidate threshold from Flight::register_waiter_locked
  /// (join-time count + this caller's budget; kUnboundedThreshold =
  /// none): the budget meters candidates evaluated ON THIS CALLER'S
  /// WATCH, so joining a long-running flight doesn't charge it for
  /// effort it never asked for.
  std::int64_t budget_threshold = Flight::kUnboundedThreshold;
  bool registered = false;
  std::shared_ptr<const Outcome> outcome;
  /// Engine-level waiter-outcome counters (registry instruments, stable
  /// for the engine's lifetime, which `engine` pins); lets the wait path
  /// count without reaching into Engine's private impl.
  obs::Counter* deadline_counter = nullptr;
  obs::Counter* cancelled_counter = nullptr;

  ~FutureState() {
    if (!flight) return;
    std::lock_guard<std::mutex> lock(flight->mu);
    if (registered) {
      registered = false;
      // Dropping every handle without get() is an implicit cancel of this
      // caller's interest; the flight keeps running for the others.
      flight->deregister_waiter_locked(deadline, budget_threshold);
    }
  }
};

}  // namespace detail

using detail::Flight;
using detail::FutureState;
using detail::Outcome;

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct Engine::Impl {
  std::shared_ptr<cache::PlanCache> cache;  ///< null under kBypass

  /// Calibration state (DESIGN.md §13), hot-swappable via
  /// set_calibration. `hash` is table->content_hash() ("" = analytic);
  /// `prior_hashes` is the short most-recent-first history of superseded
  /// hashes that prepare() probes for repair seeds on a miss.
  mutable std::mutex calib_mu;
  std::shared_ptr<const calib::CalibrationTable> calib;
  std::string calib_hash;
  std::vector<std::string> prior_calib_hashes;

  std::mutex flights_mu;
  std::unordered_map<cache::RequestKey, std::shared_ptr<Flight>,
                     cache::RequestKeyHash>
      flights;

  std::mutex jobs_mu;
  std::condition_variable jobs_cv;
  std::deque<std::shared_ptr<Flight>> queue;
  std::vector<std::thread> workers;
  bool workers_started = false;
  bool shutdown = false;

  /// Observability (DESIGN.md §15): the service counters live on the
  /// engine's metrics registry; EngineStats is a snapshot view over
  /// them. Declaration order matters — the instrument pointers resolve
  /// off `registry` during member initialization.
  std::shared_ptr<obs::Registry> registry = std::make_shared<obs::Registry>();
  obs::Counter* requests = registry->counter("engine.requests");
  obs::Counter* searches = registry->counter("engine.searches");
  obs::Counter* flights_joined = registry->counter("engine.flights_joined");
  obs::Counter* cancelled = registry->counter("engine.cancelled");
  obs::Counter* deadlines = registry->counter("engine.deadlines");
  obs::Histogram* search_seconds =
      registry->histogram("engine.search_seconds");
};

std::string EngineStats::describe() const {
  std::ostringstream os;
  os << "requests=" << requests << " searches=" << searches
     << " flights_joined=" << flights_joined << " cancelled=" << cancelled
     << " deadlines=" << deadlines;
  return os.str();
}

std::shared_ptr<Engine> Engine::create(EngineOptions options) {
  return std::shared_ptr<Engine>(new Engine(std::move(options)));
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {
  SessionOptions& cache_options = options_.cache;

  // ---- Calibration bootstrap (DESIGN.md §13) ----
  // Runs even under kBypass: calibration changes what a search produces,
  // not how it is cached. An explicit path must load or throw; the
  // $KARMA_CALIB_DIR default is opt-in ambience — absent file is normal,
  // a corrupt one warns and runs uncalibrated.
  {
    std::string path = cache_options.calibration_path;
    bool from_env = false;
    if (path.empty()) {
      if (const char* dir = std::getenv("KARMA_CALIB_DIR")) {
        path = std::string(dir) + "/calibration.json";
        from_env = true;
      }
    }
    if (!path.empty()) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        if (!from_env)
          throw std::runtime_error("cannot read calibration table '" + path +
                                   "'");
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        try {
          auto table = std::make_shared<const calib::CalibrationTable>(
              calib::CalibrationTable::from_json(text.str()));
          impl_->calib_hash = table->content_hash();
          impl_->calib = std::move(table);
          // Analytic-model entries stay reachable as repair seeds.
          impl_->prior_calib_hashes.push_back("");
        } catch (const std::exception& ex) {
          if (!from_env) throw;
          std::fprintf(stderr,
                       "karma: ignoring corrupt calibration table '%s': %s\n",
                       path.c_str(), ex.what());
        }
      }
    }
  }

  if (cache_options.cache_mode == SessionOptions::CacheMode::kBypass) return;
  if (cache_options.cache_dir.empty()) {
    // Opt-in persistent store via the environment (examples, CI): keep
    // shared cache dirs under the build tree — entries are generated
    // artifacts and must never land in version control.
    if (const char* dir = std::getenv("KARMA_CACHE_DIR"))
      cache_options.cache_dir = dir;
  }
  cache::PlanCache::Options opts;
  opts.memory_capacity_bytes = cache_options.cache_memory_bytes;
  opts.dir = cache_options.cache_dir;
  opts.read_only =
      cache_options.cache_mode == SessionOptions::CacheMode::kReadOnly;
  opts.negative_cache =
      cache_options.cache_mode != SessionOptions::CacheMode::kPositiveOnly;
  impl_->cache = std::make_shared<cache::PlanCache>(std::move(opts));

  // Mirror the cache's own counters into registry gauges at snapshot
  // time (CacheStats stays the owning surface; the registry is a
  // read-through view). The weak_ptr makes the collector inert if a
  // metrics() shared_ptr outlives this engine.
  obs::Registry* reg = impl_->registry.get();
  reg->add_collector(
      [reg, weak_cache = std::weak_ptr<cache::PlanCache>(impl_->cache)] {
        const std::shared_ptr<cache::PlanCache> cache = weak_cache.lock();
        if (!cache) return;
        const cache::CacheStats s = cache->stats();
        const auto mirror = [reg](const char* name, std::uint64_t v) {
          reg->gauge(name)->set(static_cast<double>(v));
        };
        mirror("cache.memory_hits", s.memory_hits);
        mirror("cache.disk_hits", s.disk_hits);
        mirror("cache.misses", s.misses);
        mirror("cache.insertions", s.insertions);
        mirror("cache.evictions", s.evictions);
        mirror("cache.disk_writes", s.disk_writes);
        mirror("cache.corrupt_entries", s.corrupt_entries);
        mirror("cache.resident_bytes", s.resident_bytes);
        mirror("cache.negative_hits", s.negative_hits);
        mirror("cache.negative_insertions", s.negative_insertions);
      });
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mu);
    impl_->shutdown = true;
  }
  impl_->jobs_cv.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  // Belt: settle anything still queued (normally impossible — queued
  // flights hold futures, and futures keep the engine alive).
  std::deque<std::shared_ptr<Flight>> leftover;
  {
    std::lock_guard<std::mutex> lock(impl_->jobs_mu);
    leftover.swap(impl_->queue);
  }
  for (const auto& flight : leftover) {
    PlanError e = interrupted_error(StopReason::kCancelled, flight->request);
    e.message = "engine shut down before the search started";
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->outcome = std::make_shared<const Outcome>(std::move(e));
    flight->done = true;
    flight->cv.notify_all();
  }
}

cache::CacheStats Engine::cache_stats() const {
  return impl_->cache ? impl_->cache->stats() : cache::CacheStats{};
}

cache::PlanCache* Engine::plan_cache() const { return impl_->cache.get(); }

void Engine::set_calibration(
    std::shared_ptr<const calib::CalibrationTable> table) {
  const std::string hash = table ? table->content_hash() : std::string();
  std::lock_guard<std::mutex> lock(impl_->calib_mu);
  if (hash == impl_->calib_hash) {
    impl_->calib = std::move(table);  // same content, refreshed pointer
    return;
  }
  // Retire the superseded hash to the front of the repair-seed history
  // ("" — the analytic model — is a legitimate entry: plans cached before
  // any calibration seed the first calibrated searches). Bounded, deduped,
  // and never containing the ACTIVE hash, so prepare() probes at most a
  // handful of old keys and never its own.
  auto& prior = impl_->prior_calib_hashes;
  prior.erase(std::remove(prior.begin(), prior.end(), impl_->calib_hash),
              prior.end());
  prior.insert(prior.begin(), impl_->calib_hash);
  prior.erase(std::remove(prior.begin(), prior.end(), hash), prior.end());
  if (prior.size() > 4) prior.resize(4);
  impl_->calib = std::move(table);
  impl_->calib_hash = hash;
}

std::shared_ptr<const calib::CalibrationTable> Engine::calibration() const {
  std::lock_guard<std::mutex> lock(impl_->calib_mu);
  return impl_->calib;
}

std::string Engine::calibration_hash() const {
  std::lock_guard<std::mutex> lock(impl_->calib_mu);
  return impl_->calib_hash;
}

cache::RequestKey Engine::key_for(const PlanRequest& request) const {
  return cache::request_key(request, calibration_hash());
}

EngineStats Engine::stats() const {
  // Causally-consistent snapshot with no stop-the-world pause: every
  // increment is release-ordered (obs::Counter) and sequenced AFTER the
  // `requests` increment of the submission it belongs to, so reading the
  // downstream counters FIRST (acquire) guarantees that any effect we
  // observe has its cause visible in the later `requests` load. Within
  // one EngineStats, `searches + flights_joined <= requests` and
  // `cancelled + deadlines <= requests` therefore always hold — the
  // torn mixed-epoch snapshots the storm-poll regression test hunts.
  EngineStats s;
  s.searches = impl_->searches->value();
  s.flights_joined = impl_->flights_joined->value();
  s.cancelled = impl_->cancelled->value();
  s.deadlines = impl_->deadlines->value();
  s.requests = impl_->requests->value();
  return s;
}

const std::shared_ptr<obs::Registry>& Engine::metrics() const {
  return impl_->registry;
}

struct Engine::Prepared {
  std::shared_ptr<const Outcome> settled;  ///< set XOR flight set
  std::shared_ptr<Flight> flight;
  bool leader = false;
  Clock::time_point waiter_deadline = Clock::time_point::max();
  /// Absolute threshold returned by register_waiter_locked.
  std::int64_t waiter_budget_threshold = Flight::kUnboundedThreshold;
};

namespace {

/// Builds a fresh flight this caller leads: one construction path for the
/// listed (single-flight) and unlisted (kBypass) cases, so a new Flight
/// field initialized from the request cannot silently diverge between
/// them. Registers the caller as the first waiter; `threshold_out`
/// receives its absolute budget threshold.
std::shared_ptr<Flight> lead_flight(const PlanRequest& request,
                                    const core::PlannerOptions& planner_options,
                                    Bytes reserved_host, bool listed,
                                    Clock::time_point waiter_deadline,
                                    std::int64_t* threshold_out) {
  auto flight = std::make_shared<Flight>();
  flight->listed = listed;
  flight->request = request;
  flight->planner_options = planner_options;
  flight->reserved_host = reserved_host;
  flight->want_probe = request.probe_feasible_batch;
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    *threshold_out = flight->register_waiter_locked(
        waiter_deadline, request.limits.max_candidates);
  }
  return flight;
}

}  // namespace

Engine::Prepared Engine::prepare(const PlanRequest& request) {
  impl_->requests->inc();

  Prepared prepared;
  if (auto invalid = validate(request)) {
    prepared.settled = std::make_shared<const Outcome>(std::move(*invalid));
    return prepared;
  }

  const Bytes reserved_host = derive_reserved_host(request);
  core::PlannerOptions planner_options = request.planner;
  planner_options.schedule.reserved_host_bytes = reserved_host;

  // This caller's limits, clocked from submission. They bound THIS
  // caller's wait; the shared search runs under the loosest limits of
  // its whole waiting set (Flight::refresh_limits_locked).
  if (request.limits.deadline > 0)
    prepared.waiter_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               request.limits.deadline));


  // Calibration snapshot for this submission (DESIGN.md §13): the key
  // embeds the active table's hash, and a flight led below searches the
  // calibrated device and keeps this snapshot even if a hot-swap lands
  // mid-search (its waiters subscribed under this hash).
  std::shared_ptr<const calib::CalibrationTable> calib;
  std::string calib_hash;
  std::vector<std::string> prior_hashes;
  {
    std::lock_guard<std::mutex> lock(impl_->calib_mu);
    calib = impl_->calib;
    calib_hash = impl_->calib_hash;
    prior_hashes = impl_->prior_calib_hashes;
  }
  const bool calibrated = calib && !calib->empty();
  // The request a led flight actually searches: the raw request with the
  // cost overlay applied. Built lazily — hits and joins never copy it.
  const auto effective_request = [&] {
    PlanRequest effective = request;
    if (calibrated) effective.device = calib::apply(*calib, request.device);
    return effective;
  };

  const bool bypass =
      options_.cache.cache_mode == SessionOptions::CacheMode::kBypass;
  cache::RequestKey key{};
  if (!bypass) {
    // ---- Shared-cache consult (content-addressed; DESIGN.md §10) ----
    // The key is computed from the raw request: the derived reserve is a
    // pure function of request fields, so equal keys imply equal
    // effective options. limits/probe knobs are excluded (error-path and
    // patience knobs never change a completed artifact).
    key = cache::request_key(request, calib_hash);
    if (impl_->cache) {
      obs::Span lookup_span("engine.cache_lookup", "cache");
      if (auto hit = impl_->cache->lookup(key)) {
        prepared.settled = std::make_shared<const Outcome>(std::move(*hit));
        return prepared;
      }
      if (auto negative = impl_->cache->lookup_negative(
              key, request.probe_feasible_batch)) {
        prepared.settled =
            std::make_shared<const Outcome>(std::move(*negative));
        return prepared;
      }
    }
    // ---- Single-flight join-or-create (DESIGN.md §11) ----
    std::lock_guard<std::mutex> lock(impl_->flights_mu);
    auto it = impl_->flights.find(key);
    if (it != impl_->flights.end()) {
      bool joinable = false;
      {
        std::lock_guard<std::mutex> flight_lock(it->second->mu);
        joinable = !it->second->abandoned;
        if (joinable) {
          prepared.waiter_budget_threshold =
              it->second->register_waiter_locked(
                  prepared.waiter_deadline, request.limits.max_candidates);
          it->second->want_probe |= request.probe_feasible_batch;
        }
      }
      if (joinable) {
        prepared.flight = it->second;
        impl_->flights_joined->inc();
        obs::emit_instant("engine.singleflight.join", "engine");
        return prepared;
      }
      // Abandoned (cancelled with no waiters left, not yet settled):
      // delist it — its own settle compares pointers before erasing — and
      // lead a fresh flight for this caller.
      impl_->flights.erase(it);
    }
    prepared.flight = lead_flight(effective_request(), planner_options,
                                  reserved_host, /*listed=*/true,
                                  prepared.waiter_deadline,
                                  &prepared.waiter_budget_threshold);
    prepared.flight->key = key;
    // Repair seed (DESIGN.md §13): the same request cached under a
    // superseded calibration is a near-optimal warm start; probe the
    // short hash history quietly (no hit/miss counter noise) so the led
    // search re-anneals from it instead of searching cold.
    if (impl_->cache) {
      for (const std::string& prior : prior_hashes) {
        if (prior == calib_hash) continue;
        if (auto seed = impl_->cache->lookup(cache::request_key(request, prior),
                                             /*quiet=*/true)) {
          prepared.flight->repair_seed =
              std::make_shared<const Plan>(std::move(*seed));
          break;
        }
      }
    }
    impl_->flights.emplace(key, prepared.flight);
    prepared.leader = true;
    obs::emit_instant("engine.singleflight.lead", "engine");
    return prepared;
  }

  // kBypass: no cache and no single-flight — a private, unlisted flight;
  // every request runs its own full search (the mode's contract, used by
  // tests to force re-searches).
  prepared.flight = lead_flight(effective_request(), planner_options,
                                reserved_host, /*listed=*/false,
                                prepared.waiter_deadline,
                                &prepared.waiter_budget_threshold);
  prepared.leader = true;
  return prepared;
}

void Engine::run_flight(const std::shared_ptr<Flight>& flight) {
  // Settling: delist first (flights_mu), THEN publish done (flight->mu) —
  // the consistent flights_mu > flight->mu order used everywhere. Any
  // joiner that found the flight before the delist still receives this
  // outcome; any caller arriving after goes through the cache.
  const auto settle = [&](Outcome&& outcome) {
    if (flight->listed) {
      std::lock_guard<std::mutex> lock(impl_->flights_mu);
      const auto it = impl_->flights.find(flight->key);
      if (it != impl_->flights.end() && it->second == flight)
        impl_->flights.erase(it);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->outcome = std::make_shared<const Outcome>(std::move(outcome));
      flight->done = true;
    }
    flight->cv.notify_all();
  };

  // The waiting set's probe demand at launch; a joiner that arrives
  // mid-diagnosis is covered by the negative cache's want_probe miss on
  // its NEXT call (the same eventual-consistency as a late deadline).
  bool want_probe = false;
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    want_probe = flight->want_probe;
  }

  // Double-check both caches: this flight may have been created after an
  // identical one settled (and cached, positively or negatively) but
  // before its map entry could be observed — re-simulating would break
  // the "exactly one search" guarantee sequential callers rely on, and
  // re-diagnosing would re-run the multi-probe bisection just memoized.
  if (flight->listed && impl_->cache) {
    if (auto hit = impl_->cache->lookup(flight->key, /*quiet=*/true)) {
      settle(Outcome(std::move(*hit)));
      return;
    }
    if (auto negative =
            impl_->cache->lookup_negative(flight->key, want_probe)) {
      settle(Outcome(std::move(*negative)));
      return;
    }
  }

  // ---- Cross-process single-flight (DESIGN.md §12) ----
  // When the cache has a persistent level, extend the in-process collapse
  // fleet-wide via claim files: become the fleet leader (exclusive flock
  // on <key>.claim, held for the whole search) or wait for the current
  // leader's artifact. The claim only coordinates DEDUP — if claiming
  // fails for I/O reasons we fall through and search anyway; correctness
  // never depends on it.
  // Read-only engines stay out entirely: a claim file is a store
  // mutation, and a read-only leader could never publish the artifact its
  // followers would be waiting on.
  cache::DiskStore::Claim fleet_claim;  // released (unlink+close) on return
  if (flight->listed && impl_->cache &&
      options_.cache.cache_mode != SessionOptions::CacheMode::kReadOnly) {
    if (cache::DiskStore* disk = impl_->cache->disk()) {
      obs::Span claim_span("engine.claim_wait", "engine");
      for (bool waiting = true; waiting;) {
        if (auto won = disk->try_claim(flight->key)) {
          fleet_claim = std::move(*won);
          // Leadership won — but a previous leader may have published
          // between our double-check above and the claim. One more quiet
          // re-lookup closes that window.
          if (auto hit = impl_->cache->lookup(flight->key, /*quiet=*/true)) {
            settle(Outcome(std::move(*hit)));
            return;
          }
          break;  // we lead the fleet-wide search
        }
        switch (disk->wait_for_entry(flight->key, flight->control)) {
          case cache::DiskStore::WaitOutcome::kEntry:
            // The remote leader published. Serve it through the normal
            // lookup (counts a disk hit — this process WAS served from
            // disk) unless the entry fails validation, in which case loop
            // back and try to lead the re-search ourselves.
            if (auto hit = impl_->cache->lookup(flight->key)) {
              settle(Outcome(std::move(*hit)));
              return;
            }
            break;
          case cache::DiskStore::WaitOutcome::kReleased:
            // Leader gone without an artifact: crashed, or its search
            // ended infeasible/cancelled (negative outcomes are memoized
            // per-process, never persisted). Take over — one process at a
            // time re-runs, never a storm.
            break;
          case cache::DiskStore::WaitOutcome::kInterrupted:
            // Our own waiters' limits tripped while waiting on the remote
            // leader. Fall through to the search loop: its first
            // should_stop() check settles the interrupt through the one
            // existing path (or restarts if the trip went stale).
            waiting = false;
            break;
        }
      }
    }
  }

  const auto on_best = [&](Plan&& snapshot) {
    auto shared = std::make_shared<const Plan>(std::move(snapshot));
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->best = std::move(shared);
  };

  impl_->searches->inc();
  obs::Span search_span("engine.search", "search");
  obs::ScopedTimer search_timer(impl_->search_seconds);
  try {
    for (;;) {
      try {
        Plan artifact =
            plan_uncached(flight->request, flight->planner_options,
                          flight->reserved_host, flight->control, on_best,
                          flight->repair_seed.get());
        // Only completed searches are cached; read-only enforcement lives
        // in PlanCache (insert no-ops) — one authority for the policy.
        if (flight->listed && impl_->cache)
          impl_->cache->insert(flight->key, artifact);
        settle(Outcome(std::move(artifact)));
        return;
      } catch (const core::SearchInterrupted& interrupted) {
        // A deadline/budget interrupt can be STALE: a new waiter may have
        // joined and loosened the effective limits after the search
        // tripped but before we got here. Settling kDeadline would hand
        // that waiter an expiry it never subscribed to — restart instead
        // (the search is deterministic; a restart costs time, not
        // correctness). Cancellation is sticky and never retried. The
        // token's counters are deliberately NOT reset across restarts:
        // they meter total effort spent on the flight (budgets and
        // waiter-local baselines stay monotone), so the aborted
        // attempt's evaluations remain on the bill.
        if (interrupted.reason != StopReason::kCancelled &&
            !flight->control.should_stop())
          continue;
        PlanError e = interrupted_error(interrupted.reason, flight->request);
        {
          std::lock_guard<std::mutex> lock(flight->mu);
          e.partial = flight->best;
        }
        // Never cached: an interrupt reflects this waiting set's
        // patience, not the request. The next caller re-searches fresh.
        settle(Outcome(std::move(e)));
        return;
      }
    }
  } catch (const place::FleetInfeasible& ex) {
    // Structured fleet infeasibility: placement already knows the binding
    // NODE and its tier shortfalls, so skip the single-device diagnosis
    // (which would mis-attribute the failure to request.device) and build
    // the error directly. Must precede the generic runtime_error handler
    // — FleetInfeasible derives from it precisely so the bisection probes
    // treat it as any infeasible candidate.
    PlanError e;
    e.code = ex.deficits.empty() ? PlanErrorCode::kNoFeasibleBlocking
                                 : PlanErrorCode::kTierOverflow;
    e.message = ex.what();
    e.model = flight->request.model.name();
    e.device = ex.node;
    for (const place::FleetDeficit& d : ex.deficits) {
      TierDeficit deficit;
      deficit.tier = d.tier;
      deficit.required = d.required;
      deficit.capacity = d.capacity;
      e.deficits.push_back(deficit);
    }
    bool diagnosis_complete = true;
    if (want_probe) {
      ProbeContext probe;
      probe.cache = impl_->cache.get();
      try {
        e.nearest_feasible_batch = bisect_feasible_batch(
            flight->request, flight->reserved_host, probe, flight->control);
        e.probe_candidates = probe.candidates;
        e.probe_cache_hits = probe.cache_hits;
      } catch (const core::SearchInterrupted& interrupted) {
        e = interrupted_error(interrupted.reason, flight->request);
        diagnosis_complete = false;
      }
    }
    if (diagnosis_complete && flight->listed && impl_->cache &&
        !flight->control.should_stop())
      impl_->cache->insert_negative(flight->key, e, want_probe);
    settle(Outcome(std::move(e)));
  } catch (const std::runtime_error& ex) {
    // Infeasibility is reported via std::runtime_error by both planners;
    // anything else (std::logic_error from plan validation or the sim
    // engine, allocation failure) is a bug and must surface loudly, not
    // be rebranded as a structured planning error.
    ProbeContext probe;
    probe.cache = impl_->cache.get();
    PlanError e;
    try {
      PlanRequest diagnosed = flight->request;
      diagnosed.probe_feasible_batch = want_probe;
      e = diagnose(diagnosed, flight->reserved_host, ex.what(), probe,
                   flight->control);
      // Memoize only COMPLETE diagnoses: a tripped token truncates the
      // feasible-batch bisection (best-effort bracket, possibly -1), and
      // caching that as the request's answer would permanently poison
      // nearest_feasible_batch for later, uninterrupted callers. The
      // token is sticky once tripped (cancel is a flag, the deadline is
      // in the past, candidate counters only grow), so this check covers
      // every truncation the diagnosis could have suffered.
      if (flight->listed && impl_->cache && !flight->control.should_stop())
        impl_->cache->insert_negative(flight->key, e, want_probe);
    } catch (const core::SearchInterrupted& interrupted) {
      // Cancelled/expired while diagnosing (a probe search can be deep):
      // the caller asked us to stop — the diagnosis is abandoned.
      e = interrupted_error(interrupted.reason, flight->request);
    }
    settle(Outcome(std::move(e)));
  } catch (const std::exception& ex) {
    // Invariant violation (std::logic_error from plan validation or the
    // sim engine, allocation failure): a bug, and it must surface loudly
    // — but not by stranding the flight's waiters on a never-settled cv
    // or letting later identical requests join a zombie. Settle everyone
    // with a structured internal error, then rethrow: the synchronous
    // leader propagates it to its caller exactly as the pre-service API
    // did; on a worker thread it terminates the process (loud).
    PlanError e;
    e.code = PlanErrorCode::kInternalError;
    e.message = std::string("internal error during planning: ") + ex.what();
    e.model = flight->request.model.name();
    e.device = flight->request.device.name;
    settle(Outcome(std::move(e)));
    throw;
  }
}

void Engine::ensure_workers() {
  std::lock_guard<std::mutex> lock(impl_->jobs_mu);
  if (impl_->workers_started) return;
  impl_->workers_started = true;
  std::size_t n = options_.num_workers;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::clamp<std::size_t>(hw == 0 ? 2 : hw, 1, 8);
  }
  impl_->workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    impl_->workers.emplace_back([this] { worker_loop(); });
}

void Engine::worker_loop() {
  for (;;) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock<std::mutex> lock(impl_->jobs_mu);
      impl_->jobs_cv.wait(lock, [this] {
        return impl_->shutdown || !impl_->queue.empty();
      });
      if (impl_->shutdown) return;
      flight = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }
    run_flight(flight);
  }
}

namespace {

/// Settlement helper shared by the synchronous wait and PlanFuture: blocks
/// on the flight until the search finishes or this caller's own deadline
/// passes (settling the caller-local kDeadline outcome), bounded by
/// `until` (time_point::max() = unbounded). Returns whether an outcome is
/// now available for this caller.
bool block_until_available(const std::shared_ptr<FutureState>& state,
                           Clock::time_point until) {
  if (!state->flight) return true;  // settled at submission
  Flight& flight = *state->flight;
  // Settles THIS caller with an interrupt outcome (deadline or budget)
  // while the shared search keeps running for other waiters.
  const auto settle_interrupted = [&](StopReason reason) {
    PlanError e = interrupted_error(reason, state->flight->request);
    e.partial = flight.best;
    state->outcome = std::make_shared<const Outcome>(std::move(e));
    if (state->registered) {
      state->registered = false;
      flight.deregister_waiter_locked(state->deadline,
                                      state->budget_threshold);
    }
    state->deadline_counter->inc();
    flight.cv.notify_all();  // wake copies of this future
  };
  std::unique_lock<std::mutex> lock(flight.mu);
  for (;;) {
    if (state->outcome) return true;
    if (flight.done) {
      if (state->registered) {
        state->registered = false;
        flight.deregister_waiter_locked(state->deadline,
                                        state->budget_threshold);
      }
      state->outcome = flight.outcome;
      // Interrupt outcomes count per waiter regardless of which settle
      // path won the race (the search's own trip vs the waiter-local
      // poll) — otherwise the stats depend on scheduling.
      if (!state->outcome->has_value()) {
        const PlanErrorCode code = state->outcome->error().code;
        if (code == PlanErrorCode::kDeadline)
          state->deadline_counter->inc();
        else if (code == PlanErrorCode::kCancelled)
          state->cancelled_counter->inc();
      }
      return true;
    }
    if (Clock::now() >= state->deadline) {
      settle_interrupted(StopReason::kDeadline);
      return true;
    }
    // Waiter-local candidate budget: a joiner's budget must settle the
    // joiner even when the flight's effective limits are looser (another
    // waiter is unbounded, so the search itself never trips). Candidate
    // increments don't signal the cv, so a budgeted waiter polls.
    const bool budgeted =
        state->budget_threshold != Flight::kUnboundedThreshold;
    if (budgeted && flight.control.candidates() >= state->budget_threshold) {
      settle_interrupted(StopReason::kBudget);
      return true;
    }
    if (Clock::now() >= until) return false;
    Clock::time_point wake = std::min(state->deadline, until);
    if (budgeted)
      wake = std::min(wake, Clock::now() + std::chrono::milliseconds(10));
    if (wake == Clock::time_point::max())
      flight.cv.wait(lock);
    else
      flight.cv.wait_until(lock, wake);
  }
}

Expected<Plan, PlanError> outcome_of(
    const std::shared_ptr<FutureState>& state) {
  std::shared_ptr<const Outcome> outcome;
  if (state->flight) {
    // Pin the (immutable) outcome under the lock, but materialize the
    // by-value copy outside it: a Plan can be megabytes, and copying it
    // under flight->mu would serialize every waiter of a settled storm
    // behind one another (and block progress()/cancel() meanwhile).
    std::lock_guard<std::mutex> lock(state->flight->mu);
    outcome = state->outcome;
  } else {
    outcome = state->outcome;
  }
  return *outcome;
}

}  // namespace

std::optional<Expected<Plan, PlanError>> Engine::try_cached(
    const PlanRequest& request) {
  if (auto invalid = validate(request)) {
    impl_->requests->inc();
    return Outcome(std::move(*invalid));
  }
  if (options_.cache.cache_mode == SessionOptions::CacheMode::kBypass ||
      !impl_->cache)
    return std::nullopt;
  const cache::RequestKey key = key_for(request);
  obs::Span lookup_span("engine.cache_lookup", "cache");
  // quiet: a nullopt probe flows into plan()/plan_async(), whose own
  // prepare counts the miss — counting it here too would double-bill.
  if (auto hit = impl_->cache->lookup(key, /*quiet=*/true)) {
    impl_->requests->inc();
    return Outcome(std::move(*hit));
  }
  if (auto negative =
          impl_->cache->lookup_negative(key, request.probe_feasible_batch)) {
    impl_->requests->inc();
    return Outcome(std::move(*negative));
  }
  return std::nullopt;
}

std::optional<Expected<Plan, PlanError>> Engine::try_cached(
    const cache::RequestKey& key, bool probe_feasible_batch) {
  // No validate(): the caller vouches that the bytes behind this key
  // already parsed and validated once (same bytes -> same outcome).
  if (options_.cache.cache_mode == SessionOptions::CacheMode::kBypass ||
      !impl_->cache)
    return std::nullopt;
  obs::Span lookup_span("engine.cache_lookup", "cache");
  if (auto hit = impl_->cache->lookup(key, /*quiet=*/true)) {
    impl_->requests->inc();
    return Outcome(std::move(*hit));
  }
  if (auto negative = impl_->cache->lookup_negative(key, probe_feasible_batch)) {
    impl_->requests->inc();
    return Outcome(std::move(*negative));
  }
  return std::nullopt;
}

Expected<Plan, PlanError> Engine::plan(const PlanRequest& request) {
  // A bounded synchronous caller must not lead the search on its own
  // thread: the flight's effective limits are the LOOSEST over waiters,
  // so a joiner without limits would strip this caller's deadline/budget
  // off the token and leave its own thread running the search to
  // completion. Routing through the worker pool makes it a plain waiter
  // — block_until_available settles it at ITS limits while the shared
  // search lives on (or is cancelled when it was the only one).
  if (request.limits.deadline > 0 || request.limits.max_candidates > 0)
    return plan_async(request).get();

  Prepared prepared = prepare(request);
  if (prepared.settled) return *prepared.settled;

  auto state = std::make_shared<FutureState>();
  state->engine = shared_from_this();
  state->deadline_counter = impl_->deadlines;
  state->cancelled_counter = impl_->cancelled;
  state->flight = prepared.flight;
  state->deadline = prepared.waiter_deadline;
  state->budget_threshold = prepared.waiter_budget_threshold;
  state->registered = true;

  // The synchronous leader runs the search on the calling thread — the
  // worker pool is for plan_async only. Its own deadline/budget are
  // enforced inside the search (the flight's effective limits include
  // them), so the post-run wait returns immediately.
  if (prepared.leader) run_flight(prepared.flight);
  block_until_available(state, Clock::time_point::max());
  return outcome_of(state);
}

PlanFuture Engine::plan_async(const PlanRequest& request) {
  Prepared prepared = prepare(request);
  auto state = std::make_shared<FutureState>();
  state->engine = shared_from_this();
  state->deadline_counter = impl_->deadlines;
  state->cancelled_counter = impl_->cancelled;
  if (prepared.settled) {
    state->outcome = std::move(prepared.settled);
    return PlanFuture(std::move(state));
  }
  state->flight = prepared.flight;
  state->deadline = prepared.waiter_deadline;
  state->budget_threshold = prepared.waiter_budget_threshold;
  state->registered = true;
  if (prepared.leader) {
    ensure_workers();
    {
      std::lock_guard<std::mutex> lock(impl_->jobs_mu);
      impl_->queue.push_back(prepared.flight);
    }
    impl_->jobs_cv.notify_one();
  }
  return PlanFuture(std::move(state));
}

// ---------------------------------------------------------------------------
// PlanFuture
// ---------------------------------------------------------------------------

void PlanFuture::wait() const {
  if (!state_) return;
  block_until_available(state_, Clock::time_point::max());
}

bool PlanFuture::wait_for(Seconds timeout) const {
  if (!state_) return false;
  const auto until =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(std::max(0.0, timeout)));
  return block_until_available(state_, until);
}

Expected<Plan, PlanError> PlanFuture::get() const {
  if (!state_)
    throw std::logic_error("PlanFuture::get on an invalid future");
  block_until_available(state_, Clock::time_point::max());
  return outcome_of(state_);
}

void PlanFuture::cancel() const {
  if (!state_ || !state_->flight) return;  // settled at submission: no-op
  Flight& flight = *state_->flight;
  std::lock_guard<std::mutex> lock(flight.mu);
  if (state_->outcome || flight.done) return;  // outcome already available
  PlanError e =
      interrupted_error(StopReason::kCancelled, state_->flight->request);
  e.partial = flight.best;
  state_->outcome = std::make_shared<const Outcome>(std::move(e));
  if (state_->registered) {
    state_->registered = false;
    flight.deregister_waiter_locked(state_->deadline,
                                    state_->budget_threshold);
  }
  state_->cancelled_counter->inc();
  flight.cv.notify_all();  // wake copies of this future blocked in get()
}

PlanProgress PlanFuture::progress() const {
  PlanProgress progress;
  if (!state_) return progress;
  if (!state_->flight) {
    progress.done = true;  // settled at submission: no search ran
    return progress;
  }
  const Flight& flight = *state_->flight;
  progress.candidates = flight.control.candidates();
  progress.simulations = flight.control.simulations();
  progress.memo_hits = flight.control.memo_hits();
  progress.best_cost = flight.control.best_cost();
  progress.has_best = std::isfinite(progress.best_cost);
  std::lock_guard<std::mutex> lock(state_->flight->mu);
  progress.done = state_->flight->done || state_->outcome != nullptr;
  return progress;
}

}  // namespace karma::api
