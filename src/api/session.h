// karma::api::Session — the one planning facade (DESIGN.md §8).
//
// The paper's workflow is a single pipeline: profile a model, solve Opt-1
// (blocking) and Opt-2 (recompute interleave), then execute the blocked
// schedule. The facade exposes it as a single request/artifact exchange:
//
//   PlanRequest  — model + device/storage hierarchy + optional distributed
//                  options + optimizer model + planner knobs;
//   Session::plan(request) -> Expected<Plan, PlanError>
//   Plan         — one artifact unifying the legacy PlanResult /
//                  DistributedResult, with simulate() (engine replay),
//                  to_json()/from_json() (deterministic round-trip, plan
//                  caching), and bind_executor() (derives OocExecutor
//                  blocks + per-tier policies from planner output).
//
// Session is the one public planning entry point. The core planners —
// KarmaPlanner::plan(), plan_data_parallel() — are internal implementation
// details behind it (the deprecated-shim window for external callers is
// closed); hand-built OocExecutor block lists remain only for white-box
// numeric tests.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/api/errors.h"
#include "src/core/distributed.h"
#include "src/core/planner.h"
#include "src/train/ooc_exec.h"

namespace karma::cache {
class PlanCache;
struct CacheStats;
}  // namespace karma::cache

namespace karma::api {

/// Optimizer state model. CPU-side updates (pipeline stage 5) keep master
/// weights and optimizer moments pinned in host DRAM for the whole run;
/// that residency competes with swapped activations for the same tier, so
/// the planner pre-charges it into per-tier admission (route_spills'
/// `reserved_host`) instead of discovering the conflict at run time.
struct OptimizerSpec {
  enum class Kind { kNone, kSgd, kSgdMomentum, kAdam };
  Kind kind = Kind::kNone;
  /// State is host-resident (the paper's CPU-update regime). Device-side
  /// optimizers would charge HBM instead; not modeled yet.
  bool host_resident = true;
  /// Override for exotic optimizers: host bytes per parameter byte. < 0
  /// derives from `kind` (none 0, SGD 1 master copy, +1 momentum, Adam 3).
  double state_bytes_per_param_byte = -1.0;

  double state_multiplier() const;
  /// Host-pinned bytes for `param_bytes` of model parameters.
  Bytes host_state_bytes(Bytes param_bytes) const;
};

/// Everything Session::plan needs, as one value. Copyable; the model is
/// held by value so requests can outlive the scope that built them.
struct PlanRequest {
  graph::Model model{"(unset)"};
  sim::DeviceSpec device;
  core::PlannerOptions planner;
  /// Host-pinned optimizer state, charged into per-tier admission. The
  /// charge ADDS to any planner.schedule.reserved_host_bytes the caller
  /// set directly (distinct host-pinning consumers compose).
  OptimizerSpec optimizer;
  /// Set to plan the 5-stage data-parallel pipeline instead of single-GPU.
  /// Note: the PlannerOptions copy embedded in DistributedOptions is
  /// superseded by `planner` above (plus the optimizer reserve) — the
  /// facade has exactly one set of planner knobs.
  std::optional<core::DistributedOptions> distributed;
  /// On infeasibility, bisect the batch size to report the nearest batch
  /// that *would* plan (PlanError::nearest_feasible_batch). Costs a few
  /// extra planner runs on the error path only.
  bool probe_feasible_batch = true;
};

/// The unified plan artifact: planner output + executor binding + I/O.
struct Plan {
  // ---- Provenance ----
  std::string model_name;
  std::int64_t batch = 0;        ///< leading batch dim of the planned model
  std::int64_t model_layers = 0; ///< layer count the block ranges index into
  sim::DeviceSpec device;

  // ---- Planner output (unifies PlanResult / DistributedResult) ----
  sim::Plan schedule;            ///< the Plan IR: blocks, costs, ops
  std::vector<core::BlockPolicy> policies;
  /// Trace of the planning run. Its per-op records are transient — the
  /// JSON schema serializes only the scalar metrics (makespan, occupancy,
  /// peaks) — so plans loaded from the disk cache carry an otherwise
  /// empty trace; call simulate() to regenerate the full record
  /// deterministically.
  sim::ExecutionTrace trace;
  Seconds iteration_time = 0.0;  ///< steady-state iteration time
  Seconds first_iteration_time = 0.0;  ///< = iteration_time for single-GPU
  double occupancy = 0.0;
  Bytes reserved_host_bytes = 0; ///< optimizer pre-charge used in admission

  // ---- Distributed extras (meaningful when distributed == true) ----
  bool distributed = false;
  bool weights_resident = true;
  std::optional<net::ExchangePlan> exchange;

  /// Opt-1/Opt-2 search-effort accounting from the planning run that
  /// produced this artifact (DESIGN.md §10). Transient diagnostics — NOT
  /// part of the JSON schema: disk-loaded plans and distributed plans
  /// carry zeros; memory-cache hits carry the original run's counters.
  core::SearchStats search_stats;

  const std::vector<sim::Block>& blocks() const { return schedule.blocks; }

  /// Replays the schedule on a fresh engine. Deterministic: equal plans
  /// (e.g. after a JSON round-trip) reproduce the same makespan exactly.
  sim::ExecutionTrace simulate() const;

  /// Deterministic JSON serialization (schema in DESIGN.md §8). Doubles
  /// are printed with 17 significant digits so from_json(to_json(p))
  /// round-trips bit-exactly.
  std::string to_json() const;
  static Expected<Plan, PlanError> from_json(const std::string& json);

  /// Projects the planner's blocking + policies onto a Sequential with
  /// `num_layers` layers: boundaries scale proportionally (identity when
  /// the layer counts match), per-block tier policies carry over. Blocks
  /// that collapse to zero layers are dropped.
  std::vector<train::OocBlock> derive_ooc_blocks(std::size_t num_layers) const;

  /// Binds the plan to a real network: derives the OocBlock partition from
  /// planner output and constructs the executor with the same per-tier
  /// routing the planner chose — the planner->executor bridge, no hand
  /// assembly. `pool_capacity` bounds retained activations on the numeric
  /// twin's device pool; `host_capacity` bounds its host store (0 =
  /// unbounded, the seed model). The plan's host pre-charges (optimizer
  /// reserve + pinned shard baseline) are pinned into the executor's host
  /// store, so the twin honors the same bounded-DRAM admission the
  /// planner used. Throws std::invalid_argument when the net is empty or
  /// the plan is distributed (no executor semantics yet).
  train::OocExecutor bind_executor(train::Sequential* net,
                                   Bytes pool_capacity,
                                   Bytes host_capacity = 0) const;

  /// Legacy interop: view as the deprecated core::PlanResult (single-GPU
  /// shape). Lets migrated call sites feed code still speaking the old
  /// types during the shim window.
  core::PlanResult to_plan_result() const;
};

/// Cache behavior of a Session (DESIGN.md §10). Planning is pure —
/// requests are values, plans are deterministic serializable artifacts —
/// so Session::plan() is memoizable by content: requests are fingerprinted
/// (cache::RequestKey), answered from an in-memory LRU, then from an
/// optional on-disk store whose entries are the v2 plan JSON artifacts.
struct SessionOptions {
  enum class CacheMode {
    kEnabled,   ///< consult and populate the cache (default)
    kReadOnly,  ///< consult only; never insert or write to disk
    kBypass,    ///< no cache at all: every plan() runs the full search
  };
  CacheMode cache_mode = CacheMode::kEnabled;
  /// Max in-memory plan artifacts (LRU); 0 = no memory level.
  std::size_t cache_memory_capacity = 64;
  /// Directory of the persistent plan store. Empty = use the
  /// KARMA_CACHE_DIR environment variable when set, otherwise cache in
  /// memory only. (Keep shared cache dirs under the build tree — they
  /// are generated artifacts; see .gitignore.)
  std::string cache_dir;
};

/// The facade. Carries the two-level plan cache (ROADMAP "session-level
/// plan caching"); still cheap to construct per call site — a default
/// Session costs one empty LRU, and cache misses cost one fingerprint
/// hash on top of the search they were going to run anyway.
class Session {
 public:
  /// Default options: in-memory caching, disk store from $KARMA_CACHE_DIR
  /// when the variable is set.
  Session();
  explicit Session(SessionOptions options);

  /// Plans `request` end to end: charges the optimizer's host residency
  /// into per-tier admission, consults the plan cache, and on a miss runs
  /// Opt-1/Opt-2 (or the 5-stage distributed pipeline when
  /// request.distributed is set) and wraps the result in a Plan artifact.
  /// Cache hits are bit-identical (same to_json()) to fresh plans. Never
  /// throws for infeasibility — returns a PlanError with structured
  /// diagnostics instead; the nearest-feasible-batch bisection on that
  /// path caches its successful probe plans too, so repeated diagnoses
  /// reuse intermediate candidates instead of re-planning them.
  Expected<Plan, PlanError> plan(const PlanRequest& request) const;

  /// Throwing convenience for call sites without error handling (benches,
  /// examples): unwraps or throws std::runtime_error(error.describe()).
  Plan plan_or_throw(const PlanRequest& request) const;

  /// Hit/miss/eviction/corruption counters of this session's cache (all
  /// zeros under CacheMode::kBypass).
  cache::CacheStats cache_stats() const;

  const SessionOptions& options() const { return options_; }

 private:
  SessionOptions options_;
  /// Shared so Session stays copyable; copies share one cache.
  std::shared_ptr<cache::PlanCache> cache_;  ///< null under kBypass
};

}  // namespace karma::api
