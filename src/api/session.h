// karma::api v2 — Session, the per-tenant planning handle (DESIGN.md §8,
// §11).
//
// The paper's workflow is a single pipeline: profile a model, solve Opt-1
// (blocking) and Opt-2 (recompute interleave), then execute the blocked
// schedule. The facade exposes it as a single request/artifact exchange:
//
//   PlanRequest  — model + device/storage hierarchy + optional distributed
//                  options + optimizer model + planner knobs + search
//                  limits (deadline / candidate budget);
//   Session::plan(request)       -> Expected<Plan, PlanError>
//   Session::plan_async(request) -> PlanFuture (wait/get/cancel/progress)
//   Plan         — one artifact unifying the legacy PlanResult /
//                  DistributedResult, with simulate() (engine replay),
//                  to_json()/from_json() (deterministic round-trip, plan
//                  caching), and bind_executor() (derives OocExecutor
//                  blocks + per-tier policies from planner output).
//
// Since v2, a Session is a cheap handle onto a karma::api::Engine
// (src/api/engine.h) — the process-wide planning service that owns the
// worker pool and ONE shared plan cache. Sessions created from the same
// Engine are tenants of that service: their identical concurrent requests
// collapse into a single search (single-flight), and every tenant's plans
// warm the shared cache. Construct via `Engine::create(...)->session()`;
// the v1 legacy constructors that built a hidden private Engine are gone.
// For cross-process sharing, RemoteSession (src/api/remote_session.h)
// plans through the node's karma-pland daemon with the same surface.
//
// Session is the one public planning entry point. The core planners —
// KarmaPlanner::plan(), plan_data_parallel() — are internal implementation
// details behind it (the deprecated-shim window for external callers is
// closed); hand-built OocExecutor block lists remain only for white-box
// numeric tests.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/api/errors.h"
#include "src/core/distributed.h"
#include "src/core/planner.h"
#include "src/place/fleet.h"
#include "src/place/placement.h"
#include "src/train/ooc_exec.h"

namespace karma::cache {
class PlanCache;
struct CacheStats;
}  // namespace karma::cache

namespace karma::api {

class Engine;
namespace detail {
struct FutureState;
}  // namespace detail

/// Optimizer state model. CPU-side updates (pipeline stage 5) keep master
/// weights and optimizer moments pinned in host DRAM for the whole run;
/// that residency competes with swapped activations for the same tier, so
/// the planner pre-charges it into per-tier admission (route_spills'
/// `reserved_host`) instead of discovering the conflict at run time.
struct OptimizerSpec {
  enum class Kind { kNone, kSgd, kSgdMomentum, kAdam };
  Kind kind = Kind::kNone;
  /// State is host-resident (the paper's CPU-update regime). Device-side
  /// optimizers would charge HBM instead; not modeled yet.
  bool host_resident = true;
  /// Override for exotic optimizers: host bytes per parameter byte. < 0
  /// derives from `kind` (none 0, SGD 1 master copy, +1 momentum, Adam 3).
  double state_bytes_per_param_byte = -1.0;

  double state_multiplier() const;
  /// Host-pinned bytes for `param_bytes` of model parameters.
  Bytes host_state_bytes(Bytes param_bytes) const;
};

/// Everything Session::plan needs, as one value. Copyable; the model is
/// held by value so requests can outlive the scope that built them.
struct PlanRequest {
  graph::Model model{"(unset)"};
  sim::DeviceSpec device;
  core::PlannerOptions planner;
  /// Host-pinned optimizer state, charged into per-tier admission. The
  /// charge ADDS to any planner.schedule.reserved_host_bytes the caller
  /// set directly (distinct host-pinning consumers compose).
  OptimizerSpec optimizer;
  /// Set to plan the 5-stage data-parallel pipeline instead of single-GPU.
  /// Note: the PlannerOptions copy embedded in DistributedOptions is
  /// superseded by `planner` above (plus the optimizer reserve) — the
  /// facade has exactly one set of planner knobs.
  std::optional<core::DistributedOptions> distributed;
  /// Set to plan a HETEROGENEOUS fleet (DESIGN.md §16): the device above
  /// is ignored as a compute target (each FleetNode carries its own), a
  /// cost-based shard placement decides per-node ownership, and every
  /// node gets its own blocking/policy search. Mutually exclusive with
  /// `distributed` — symmetric data parallelism is the distributed path.
  std::optional<place::FleetSpec> fleet;
  /// On infeasibility, bisect the batch size to report the nearest batch
  /// that *would* plan (PlanError::nearest_feasible_batch). Costs a few
  /// extra planner runs on the error path only.
  bool probe_feasible_batch = true;

  /// Bounds on the search effort spent on THIS caller's behalf. Like
  /// probe_feasible_batch, limits are excluded from the cache fingerprint:
  /// they never change the artifact a completed search produces (the
  /// search is deterministic; a limit only decides whether it finishes),
  /// so a deadline-bounded request still hits cache entries written by
  /// unbounded ones. A search stopped by a limit returns
  /// PlanError{kDeadline} with the best-so-far feasible plan attached
  /// (PlanError::partial) and is never cached. Under single-flight, one
  /// waiter's limits never truncate another's search: the shared search
  /// keeps running while any interested waiter remains unbounded (or has
  /// the latest deadline / largest budget).
  struct SearchLimits {
    /// Wall-clock budget in seconds, measured from submission; <= 0 =
    /// unbounded.
    Seconds deadline = 0;
    /// Candidate-evaluation budget (memo hits included); <= 0 = unbounded.
    std::int64_t max_candidates = 0;
  };
  SearchLimits limits;
};

/// The unified plan artifact: planner output + executor binding + I/O.
struct Plan {
  // ---- Provenance ----
  std::string model_name;
  std::int64_t batch = 0;        ///< leading batch dim of the planned model
  std::int64_t model_layers = 0; ///< layer count the block ranges index into
  sim::DeviceSpec device;

  // ---- Planner output (unifies PlanResult / DistributedResult) ----
  sim::Plan schedule;            ///< the Plan IR: blocks, costs, ops
  std::vector<core::BlockPolicy> policies;
  /// Trace of the planning run. Its per-op records are transient — the
  /// JSON schema serializes only the scalar metrics (makespan, occupancy,
  /// peaks) — so plans loaded from the disk cache carry an otherwise
  /// empty trace; call simulate() to regenerate the full record
  /// deterministically.
  sim::ExecutionTrace trace;
  Seconds iteration_time = 0.0;  ///< steady-state iteration time
  Seconds first_iteration_time = 0.0;  ///< = iteration_time for single-GPU
  double occupancy = 0.0;
  Bytes reserved_host_bytes = 0; ///< optimizer pre-charge used in admission

  // ---- Distributed extras (meaningful when distributed == true) ----
  bool distributed = false;
  bool weights_resident = true;
  std::optional<net::ExchangePlan> exchange;

  // ---- Fleet extras (set when the request carried a FleetSpec) ----
  /// The shard-ownership placement plus the per-node straggler roll-up.
  /// The scalar artifact fields above describe the STRAGGLER node (its
  /// device, schedule, trace), so simulate() reproduces the binding rank;
  /// iteration_time is the fleet max including exchange + update tails.
  std::optional<place::PlacementPlan> placement;

  /// Opt-1/Opt-2 search-effort accounting from the planning run that
  /// produced this artifact (DESIGN.md §10). Transient diagnostics — NOT
  /// part of the JSON schema: disk-loaded plans and distributed plans
  /// carry zeros; memory-cache hits carry the original run's counters.
  core::SearchStats search_stats;

  const std::vector<sim::Block>& blocks() const { return schedule.blocks; }

  /// Replays the schedule on a fresh engine. Deterministic: equal plans
  /// (e.g. after a JSON round-trip) reproduce the same makespan exactly.
  sim::ExecutionTrace simulate() const;

  /// Deterministic JSON serialization (schema in DESIGN.md §8). Doubles
  /// are printed with 17 significant digits so from_json(to_json(p))
  /// round-trips bit-exactly.
  std::string to_json() const;
  static Expected<Plan, PlanError> from_json(const std::string& json);

  /// Projects the planner's blocking + policies onto a Sequential with
  /// `num_layers` layers: boundaries scale proportionally (identity when
  /// the layer counts match), per-block tier policies carry over. Blocks
  /// that collapse to zero layers are dropped.
  std::vector<train::OocBlock> derive_ooc_blocks(std::size_t num_layers) const;

  /// Binds the plan to a real network: derives the OocBlock partition from
  /// planner output and constructs the executor with the same per-tier
  /// routing the planner chose — the planner->executor bridge, no hand
  /// assembly. `pool_capacity` bounds retained activations on the numeric
  /// twin's device pool; `host_capacity` bounds its host store (0 =
  /// unbounded, the seed model). The plan's host pre-charges (optimizer
  /// reserve + pinned shard baseline) are pinned into the executor's host
  /// store, so the twin honors the same bounded-DRAM admission the
  /// planner used. Throws std::invalid_argument when the net is empty or
  /// the plan is distributed (no executor semantics yet).
  train::OocExecutor bind_executor(train::Sequential* net,
                                   Bytes pool_capacity,
                                   Bytes host_capacity = 0) const;

  /// Legacy interop: view as the deprecated core::PlanResult (single-GPU
  /// shape). Lets migrated call sites feed code still speaking the old
  /// types during the shim window.
  core::PlanResult to_plan_result() const;
};

/// Cache behavior of the Engine a Session speaks to (DESIGN.md §10, §11).
/// Planning is pure — requests are values, plans are deterministic
/// serializable artifacts — so plan() is memoizable by content: requests
/// are fingerprinted (cache::RequestKey), answered from an in-memory LRU,
/// then from an optional on-disk store whose entries are the v2 plan JSON
/// artifacts. Infeasible outcomes are memoized too (negative-result
/// cache), in memory only.
struct SessionOptions {
  enum class CacheMode {
    kEnabled,       ///< consult and populate both caches (default)
    kReadOnly,      ///< consult only; never insert or write to disk
    kBypass,        ///< no cache at all: every plan() runs the full search
    kPositiveOnly,  ///< plan cache on, negative-result cache bypassed:
                    ///< every infeasible request re-diagnoses
  };
  CacheMode cache_mode = CacheMode::kEnabled;
  /// Max resident bytes of in-memory plan artifacts, counted as
  /// serialized (to_json) artifact size — entries are whole plans, so
  /// capacity is what they actually weigh, not how many there are
  /// (ROADMAP "eviction by resident bytes"). 0 = no memory level.
  Bytes cache_memory_bytes = 256ll * 1024 * 1024;
  /// Directory of the persistent plan store. Empty = use the
  /// KARMA_CACHE_DIR environment variable when set, otherwise cache in
  /// memory only. (Keep shared cache dirs under the build tree — they
  /// are generated artifacts; see .gitignore.)
  std::string cache_dir;
  /// Path of a calib::CalibrationTable JSON installed at Engine
  /// construction (DESIGN.md §13). Empty = load
  /// $KARMA_CALIB_DIR/calibration.json when that file exists, else run
  /// uncalibrated (the analytic cost model). An explicit path that cannot
  /// be read or parsed throws from Engine::create — a requested
  /// calibration silently ignored would be worse than failing loudly; the
  /// env-derived default only warns on a corrupt file.
  std::string calibration_path;
};

/// Live view of an asynchronous plan's search, readable at any time
/// (PlanFuture::progress). Counters come straight from the running
/// search's CancelToken; cache activity is engine-wide
/// (Engine::cache_stats) rather than per-request.
struct PlanProgress {
  std::int64_t candidates = 0;   ///< candidate evaluations so far
  std::int64_t simulations = 0;  ///< full engine replays among them
  std::int64_t memo_hits = 0;    ///< served by the Opt-1/Opt-2 memo
  /// Best simulated iteration time found so far; +inf until the first
  /// feasible candidate.
  double best_cost = 0.0;
  bool has_best = false;  ///< best_cost is a real feasible candidate
  bool done = false;      ///< the future would return without blocking
};

/// Handle onto one asynchronous plan() — Engine::plan_async's return.
/// Copyable; copies observe (and cancel) the same submission. Destroying
/// every copy without get() withdraws the caller's interest, exactly like
/// cancel(): a single-flight search with no interested waiters left is
/// cancelled rather than burning the pool on a result nobody wants.
class PlanFuture {
 public:
  PlanFuture() = default;  ///< invalid (valid() == false)

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the outcome is available: the search finished, this
  /// caller's deadline (PlanRequest::limits) expired, or cancel() was
  /// called from another thread.
  void wait() const;

  /// wait() bounded by `timeout` seconds; returns whether the outcome is
  /// available (false = still running and within this caller's limits).
  bool wait_for(Seconds timeout) const;

  /// wait(), then the outcome. A deadline expiry yields
  /// PlanError{kDeadline} and a cancel PlanError{kCancelled}, either with
  /// the search's best-so-far feasible plan attached
  /// (PlanError::partial) when one existed. Idempotent — repeated calls
  /// return the same outcome.
  Expected<Plan, PlanError> get() const;

  /// Withdraws this caller's interest and settles the future with
  /// PlanError{kCancelled} (no-op once the outcome is available). The
  /// underlying search keeps running while OTHER waiters remain
  /// interested — one tenant's cancel never poisons another's plan — and
  /// is cooperatively cancelled when the last waiter leaves.
  void cancel() const;

  /// Snapshot of the running search (done futures report final counts).
  PlanProgress progress() const;

 private:
  friend class Engine;
  explicit PlanFuture(std::shared_ptr<detail::FutureState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::FutureState> state_;
};

/// The per-tenant planning handle (cheap, copyable; copies share the same
/// Engine). Create from an Engine: Engine::create()->session(). (The v1
/// legacy constructors that built a private single-tenant Engine are
/// gone — their one-release deprecation window closed with the daemon
/// work; a hidden private engine would silently opt a caller out of the
/// fleet-shared cache and single-flight.)
class Session {
 public:
  /// A tenant handle of `engine` (equivalently, Engine::session()).
  explicit Session(std::shared_ptr<Engine> engine);

  /// Plans `request` end to end: charges the optimizer's host residency
  /// into per-tier admission, consults the shared plan cache (positive
  /// and negative), collapses into any identical in-flight search
  /// (single-flight), and on a miss runs Opt-1/Opt-2 (or the 5-stage
  /// distributed pipeline when request.distributed is set) on the calling
  /// thread and wraps the result in a Plan artifact. Cache hits are
  /// bit-identical (same to_json()) to fresh plans. Never throws —
  /// infeasibility returns a structured PlanError (the
  /// nearest-feasible-batch bisection caches its successful probes), and
  /// request.limits turn an over-budget search into
  /// PlanError{kDeadline} with the best-so-far plan attached.
  Expected<Plan, PlanError> plan(const PlanRequest& request) const;

  /// Asynchronous form: the search runs on the Engine's worker pool; the
  /// returned future supports wait()/get()/cancel() and live progress().
  PlanFuture plan_async(const PlanRequest& request) const;

  /// Throwing convenience for call sites without error handling (benches,
  /// examples): unwraps or throws std::runtime_error(error.describe()).
  Plan plan_or_throw(const PlanRequest& request) const;

  /// Counters of the engine's shared cache (all zeros under
  /// CacheMode::kBypass).
  cache::CacheStats cache_stats() const;

  /// The engine's resolved cache options ($KARMA_CACHE_DIR applied).
  const SessionOptions& options() const;

  const std::shared_ptr<Engine>& engine() const { return engine_; }

 private:
  std::shared_ptr<Engine> engine_;  ///< never null
};

}  // namespace karma::api
