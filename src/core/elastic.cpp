#include "src/core/elastic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace karma::core {

ElasticResult simulate_epoch_with_faults(
    const graph::Model& model, const sim::DeviceSpec& device,
    const ElasticOptions& options, std::int64_t samples_per_epoch,
    const std::vector<FaultEvent>& faults) {
  const std::int64_t local_batch = model.layer(0).out_shape.batch();
  if (local_batch <= 0) throw std::invalid_argument("elastic: bad batch");

  // Fault-free reference.
  DistributedOptions dist = options.distributed;
  const auto baseline = plan_data_parallel(model, device, dist);
  const double base_samples_per_iter =
      static_cast<double>(dist.num_gpus) * static_cast<double>(local_batch);
  ElasticResult result;
  result.fault_free_epoch = static_cast<double>(samples_per_epoch) /
                            base_samples_per_iter * baseline.iteration_time;

  // Faults sorted by time.
  std::vector<FaultEvent> schedule = faults;
  std::sort(schedule.begin(), schedule.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.epoch_fraction < b.epoch_fraction;
            });

  int ranks = dist.num_gpus;
  double progressed = 0.0;  // fraction of epoch samples completed
  Seconds elapsed = 0.0;
  Seconds current_iter = baseline.iteration_time;
  result.phase_iteration_times.push_back(current_iter);

  // Periodic checkpoint cost over the whole epoch (both modes write them;
  // only relaunch consumes them).
  const int checkpoints = options.checkpoint_interval > 0
                              ? static_cast<int>(1.0 / options.checkpoint_interval)
                              : 0;
  elapsed += checkpoints * options.checkpoint_cost;

  for (const FaultEvent& fault : schedule) {
    const double target = std::clamp(fault.epoch_fraction, progressed, 1.0);
    // Run up to the fault point with the current pool.
    const double chunk = (target - progressed) *
                         static_cast<double>(samples_per_epoch);
    elapsed += chunk / (static_cast<double>(ranks) *
                        static_cast<double>(local_batch)) *
               current_iter;
    progressed = target;

    ranks -= fault.failed_ranks;
    if (ranks < 2)
      throw std::runtime_error("elastic: pool exhausted by failures");

    if (options.mode == RecoveryMode::kRelaunch) {
      // Lose progress back to the last checkpoint, pay the relaunch.
      const double lost =
          options.checkpoint_interval > 0
              ? std::min(progressed,
                         std::fmod(progressed, options.checkpoint_interval))
              : 0.0;
      progressed -= lost;
      elapsed += options.relaunch_cost;
    } else {
      // Shrink in place: a collective barrier + communicator rebuild,
      // modeled as one relaunch_cost / 4.
      elapsed += options.relaunch_cost / 4.0;
    }

    // Re-plan the pipeline for the surviving pool (the exchange phases
    // change with the rank count).
    dist.num_gpus = ranks;
    const auto replanned = plan_data_parallel(model, device, dist);
    current_iter = replanned.iteration_time;
    result.phase_iteration_times.push_back(current_iter);
  }

  // Finish the epoch with the final pool.
  const double remaining =
      (1.0 - progressed) * static_cast<double>(samples_per_epoch);
  elapsed += remaining / (static_cast<double>(ranks) *
                          static_cast<double>(local_batch)) *
             current_iter;

  result.epoch_with_faults = elapsed;
  result.overhead_fraction =
      (elapsed - result.fault_free_epoch) / result.fault_free_epoch;
  result.final_ranks = ranks;
  return result;
}

}  // namespace karma::core
