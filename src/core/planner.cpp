#include "src/core/planner.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "src/graph/memory_model.h"
#include "src/obs/span.h"
#include "src/sim/device.h"
#include "src/solver/anneal.h"
#include "src/solver/exhaustive.h"
#include "src/util/infeasible.h"
#include "src/util/par.h"
#include "src/util/rng.h"

namespace karma::core {

std::vector<int> clean_cut_points(const graph::Model& model) {
  const int n = static_cast<int>(model.num_layers());
  // Position p (a boundary between layer p-1 and layer p) is clean when no
  // edge (u, v) with u < p-1 and v >= p crosses it — i.e. only the chain
  // edge spans the cut.
  std::vector<int> crossing(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& layer : model.layers()) {
    for (int succ : model.succs(layer.id)) {
      if (succ == layer.id + 1) continue;  // chain edge
      // Edge covers cuts p in (layer.id+1, succ].
      for (int p = layer.id + 2; p <= succ; ++p)
        ++crossing[static_cast<std::size_t>(p)];
    }
  }
  std::vector<int> cuts;
  for (int p = 0; p <= n; ++p)
    if (p == 0 || p == n || crossing[static_cast<std::size_t>(p)] == 0)
      cuts.push_back(p);
  return cuts;
}

std::vector<int> candidate_cut_points(const graph::Model& model) {
  std::vector<int> cuts = clean_cut_points(model);
  const int n = static_cast<int>(model.num_layers());
  // Usable when no un-cuttable span dominates the model: U-Net's nested
  // skips leave clean cuts only near the two ends, pinning the whole
  // middle into one giant block.
  int max_gap = 0;
  for (std::size_t i = 1; i < cuts.size(); ++i)
    max_gap = std::max(max_gap, cuts[i] - cuts[i - 1]);
  if (max_gap <= std::max(8, n / 8)) return cuts;
  cuts.clear();
  for (int p = 0; p <= n; ++p) cuts.push_back(p);
  return cuts;
}

/// Incremental re-simulation state (DESIGN.md §14). `base` is the
/// candidate whose plan + checkpoint log future replays diff against.
/// Candidate evaluations resume from `base` without recording anything
/// (most candidates are rejected, so a per-evaluation checkpoint log is
/// wasted work); when a walk accepts a candidate the caller re-simulates
/// it once with recording via rebase_incremental, which installs it as
/// the new `base`. shared_ptr-to-const: worker contexts seeded from the
/// serial context alias the same immutable baseline.
struct KarmaPlanner::IncrementalCtx {
  struct BaselineSim {
    sim::Plan plan;
    sim::CheckpointLog log;
  };
  std::shared_ptr<const BaselineSim> base;
};

KarmaPlanner::KarmaPlanner(const graph::Model& model, sim::DeviceSpec device,
                           PlannerOptions options)
    : model_(model),
      device_(device),
      options_(options),
      block_cost_memo_(std::make_unique<
                       solver::SharedEvalMemo<std::uint64_t, sim::BlockCost>>()),
      candidate_memo_(
          std::make_unique<solver::SharedEvalMemo<std::string, double>>()) {
  cut_points_ = candidate_cut_points(model_);
  act_prefix_.assign(model_.num_layers() + 1, 0);
  for (std::size_t i = 0; i < model_.num_layers(); ++i) {
    const auto mem = graph::layer_memory(
        model_.layer(static_cast<int>(i)), model_.dtype_bytes(), {},
        model_.activation_memory_scale());
    act_prefix_[i + 1] = act_prefix_[i] + mem.activations;
  }
}

std::vector<sim::Block> KarmaPlanner::blocks_from_boundaries(
    const std::vector<int>& cuts) const {
  std::vector<sim::Block> blocks;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
    blocks.push_back({cuts[i], cuts[i + 1]});
  return blocks;
}

std::vector<int> KarmaPlanner::balanced_boundaries(int num_blocks) const {
  // Greedily pick clean cut points closest to the activation-byte
  // quantiles so blocks carry comparable swap payloads.
  const Bytes total = act_prefix_.back();
  std::vector<int> cuts = {0};
  std::size_t cursor = 1;  // index into cut_points_
  for (int k = 1; k < num_blocks; ++k) {
    const Bytes target =
        total * static_cast<Bytes>(k) / static_cast<Bytes>(num_blocks);
    // First clean cut whose prefix meets the target.
    while (cursor + 1 < cut_points_.size() &&
           act_prefix_[static_cast<std::size_t>(cut_points_[cursor])] < target)
      ++cursor;
    const int cut = cut_points_[std::min(cursor, cut_points_.size() - 2)];
    if (cut > cuts.back() && cut < static_cast<int>(model_.num_layers()))
      cuts.push_back(cut);
  }
  cuts.push_back(static_cast<int>(model_.num_layers()));
  return cuts;
}

namespace {

std::uint64_t block_key(const sim::Block& block) {
  return (static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(block.first_layer))
          << 32) |
         static_cast<std::uint32_t>(block.last_layer);
}

}  // namespace

sim::BlockCost KarmaPlanner::block_cost(const sim::Block& block) const {
  // Lookups/hits are counted by the sharded memo itself (thread-safe:
  // the portfolio workers share this table).
  const std::uint64_t key = block_key(block);
  if (const auto hit = block_cost_memo_->find(key)) return *hit;
  const sim::BlockCost cost = sim::compute_block_cost(model_, block, device_);
  block_cost_memo_->store(key, cost);
  return cost;
}

std::vector<BlockPolicy> KarmaPlanner::initial_policies(
    const std::vector<sim::Block>& blocks) const {
  std::vector<sim::BlockCost> costs;
  costs.reserve(blocks.size());
  Bytes weights = 0;
  for (const auto& b : blocks) {
    costs.push_back(block_cost(b));
    weights += costs.back().param_bytes + costs.back().grad_bytes;
  }
  const Bytes act_budget = device_.memory_capacity - weights;
  // Tier-aware routing kicks in only when the device models a bounded host
  // or an NVMe tier; otherwise this is exactly the seed's two-tier policy
  // assignment (tiered planning is a strict superset).
  auto policies =
      (device_.host_capacity > 0 || device_.has_nvme())
          ? tiered_policies(blocks, costs, act_budget,
                            sim::hierarchy_of(device_),
                            options_.schedule.reserved_host_bytes)
          : capacity_based_policies(blocks, costs, act_budget);

  // Sec. III-F.4: blocks with outgoing long skips (U-Net contracting path)
  // must not be swapped out ahead of their consumer; prefer recompute so
  // the boundary checkpoint stays available.
  const auto long_skip = blocks_with_long_skips(model_, blocks);
  for (std::size_t b = 0; b < blocks.size(); ++b)
    if (long_skip[b] && is_swap_policy(policies[b]))
      policies[b] = options_.enable_recompute ? BlockPolicy::kRecompute
                                              : BlockPolicy::kResident;
  return policies;
}

PlanResult KarmaPlanner::simulate_candidate(
    const std::vector<sim::Block>& blocks,
    const std::vector<BlockPolicy>& policies, const std::string& strategy,
    IncrementalCtx* inc) const {
  // Per-block costs come from the memo so a boundary move only re-costs
  // the blocks it changed; the emitted plan is identical either way.
  std::vector<sim::BlockCost> costs;
  costs.reserve(blocks.size());
  for (const auto& b : blocks) costs.push_back(block_cost(b));
  sim::Plan plan = build_training_plan(model_, device_, blocks, policies,
                                       strategy, options_.schedule, &costs);
  const sim::Engine engine(
      device_, {.reference_event_loop = options_.reference_engine_loop});
  PlanResult result;
  if (inc && inc->base && options_.incremental_resim) {
    // Evaluation-only replay: resume from the baseline's deepest shared
    // checkpoint, record nothing. Accepted candidates get their own log
    // via rebase_incremental.
    const int lcp = sim::common_op_prefix(inc->base->plan, plan);
    const sim::EngineCheckpoint* ck = inc->base->log.best_at_or_below(lcp);
    result.trace = engine.run(plan, ck, nullptr);
    if (ck) {
      counters_.incremental_resumes.fetch_add(1, std::memory_order_relaxed);
      counters_.resumed_ops_saved.fetch_add(ck->cut,
                                            std::memory_order_relaxed);
      obs::emit_instant("search.resume", "search", "ops_saved", ck->cut);
    }
  } else {
    result.trace = engine.run(plan);
  }
  result.plan = std::move(plan);
  result.blocks = blocks;
  result.policies = policies;
  result.iteration_time = result.trace.makespan;
  result.occupancy = result.trace.occupancy();
  return result;
}

void KarmaPlanner::rebase_incremental(
    IncrementalCtx& inc, const std::vector<sim::Block>& blocks,
    const std::vector<BlockPolicy>& policies,
    const std::string& strategy) const {
  if (!options_.incremental_resim) return;
  obs::Span span("search.rebase", "search");
  std::vector<sim::BlockCost> costs;
  costs.reserve(blocks.size());
  for (const auto& b : blocks) costs.push_back(block_cost(b));
  auto fresh = std::make_shared<IncrementalCtx::BaselineSim>();
  fresh->plan = build_training_plan(model_, device_, blocks, policies,
                                    strategy, options_.schedule, &costs);
  const sim::Engine engine(
      device_, {.reference_event_loop = options_.reference_engine_loop});
  const sim::EngineCheckpoint* ck = nullptr;
  if (inc.base) {
    const int lcp = sim::common_op_prefix(inc.base->plan, fresh->plan);
    ck = inc.base->log.best_at_or_below(lcp);
    if (ck) fresh->log.seed_from(inc.base->log, ck->cut);
  }
  engine.run(fresh->plan, ck, &fresh->log);
  if (ck) {
    counters_.incremental_resumes.fetch_add(1, std::memory_order_relaxed);
    counters_.resumed_ops_saved.fetch_add(ck->cut, std::memory_order_relaxed);
  }
  inc.base = std::move(fresh);
}

std::optional<PlanResult> KarmaPlanner::evaluate(
    const std::vector<sim::Block>& blocks,
    const std::vector<BlockPolicy>& policies,
    const std::string& strategy) const {
  try {
    return simulate_candidate(blocks, policies, strategy, nullptr);
  } catch (const InfeasibleError&) {
    return std::nullopt;  // infeasible candidate (deadlock / over-capacity)
  }
}

PlanResult KarmaPlanner::plan(
    const CancelToken& control,
    const std::function<void(const PlanResult&)>& on_improved) const {
  return run_search(nullptr, nullptr, control, on_improved);
}

PlanResult KarmaPlanner::plan_from(
    const std::vector<sim::Block>& seed_blocks,
    const std::vector<BlockPolicy>& seed_policies, const CancelToken& control,
    const std::function<void(const PlanResult&)>& on_improved) const {
  return run_search(&seed_blocks, &seed_policies, control, on_improved);
}

PlanResult KarmaPlanner::run_search(
    const std::vector<sim::Block>* seed_blocks,
    const std::vector<BlockPolicy>* seed_policies, const CancelToken& control,
    const std::function<void(const PlanResult&)>& on_improved) const {
  const auto search_start = std::chrono::steady_clock::now();
  const std::string strategy =
      options_.enable_recompute ? "karma+recompute" : "karma";
  std::optional<PlanResult> best;
  constexpr double kInfeasible = std::numeric_limits<double>::infinity();

  // The one cooperative cancellation point, polled at candidate
  // boundaries only — never mid-simulation — so an interrupt can never
  // leave a half-evaluated candidate behind. SearchInterrupted tunnels
  // through the InfeasibleError handlers by design (it is not a
  // std::exception at all).
  const auto check_stop = [&] {
    const StopReason reason = control.stop_reason();
    if (reason != StopReason::kNone) throw SearchInterrupted{reason};
  };

  // Fresh memo state per search: the tables are an optimization of this
  // one deterministic run, never shared across runs.
  block_cost_memo_ = std::make_unique<
      solver::SharedEvalMemo<std::uint64_t, sim::BlockCost>>();
  candidate_memo_ =
      std::make_unique<solver::SharedEvalMemo<std::string, double>>();
  counters_.reset();
  bool warm_started = false;
  int anneal_workers_used = 0;

  // Serial-phase incremental context: `base` tracks the incumbent best's
  // replay (plan + checkpoint log), so every later candidate resumes from
  // the deepest checkpoint its op prefix shares with the incumbent. The
  // warm-start path seeds it with the repair seed's replay — exactly the
  // ROADMAP item-4 composition: repair rides suffix re-simulation.
  IncrementalCtx serial_inc;

  // Canonical candidate key: blocking + tier-routed policy vector. The
  // strategy string and all planner knobs are fixed for this run, so the
  // pair fully determines the (deterministic) evaluation result.
  const auto signature = [](const std::vector<sim::Block>& blocks,
                            const std::vector<BlockPolicy>& policies) {
    std::string key;
    key.reserve(blocks.size() * 8 + policies.size() + 1);
    for (const auto& b : blocks) {
      key += std::to_string(b.first_layer);
      key += ',';
      key += std::to_string(b.last_layer);
      key += ';';
    }
    key += '|';
    for (const auto p : policies)
      key += static_cast<char>('0' + static_cast<int>(p));
    return key;
  };

  // Memo-aware candidate evaluation returning only the objective (for the
  // annealer). Exact: memo values are the deterministic simulation result,
  // which also makes the table safe to share across portfolio workers —
  // when two workers race to fill the same key they store the same value
  // (incremental resume is bit-identical to cold replay by construction).
  // Lookups are counted by the memo itself; harvested into SearchStats at
  // the end of the search.
  const auto cached_objective =
      [&](const std::vector<sim::Block>& blocks,
          const std::vector<BlockPolicy>& policies,
          IncrementalCtx* inc) -> double {
    check_stop();
    const std::string key = signature(blocks, policies);
    if (const auto memoized = candidate_memo_->find(key)) {
      counters_.memo_hits.fetch_add(1, std::memory_order_relaxed);
      control.count_candidate(/*simulated=*/false);
      return *memoized;
    }
    counters_.simulations.fetch_add(1, std::memory_order_relaxed);
    control.count_candidate(/*simulated=*/true);
    double value = kInfeasible;
    try {
      value = simulate_candidate(blocks, policies, strategy, inc)
                  .iteration_time;
    } catch (const InfeasibleError&) {
    }
    candidate_memo_->store(key, value);
    return value;
  };

  // Memo-aware candidate consideration for best-tracking; returns whether
  // the candidate became the new best. A memoized candidate only needs
  // re-materialization (one extra replay) when it would actually improve
  // the incumbent — possible when the annealer scored a state without
  // promoting it; a revisit that cannot improve is a pure memo hit.
  // Serial phases only (it moves `best`); the portfolio workers go
  // through cached_objective.
  const auto consider = [&](const std::vector<sim::Block>& blocks,
                            const std::vector<BlockPolicy>& policies) {
    check_stop();
    const std::string key = signature(blocks, policies);
    const auto memoized = candidate_memo_->find(key);
    if (memoized) {
      // memo_hits counts only lookups that avoided the replay entirely;
      // a re-materialized best (the fall-through) counts as a simulation.
      if ((best && *memoized >= best->iteration_time) ||
          *memoized == kInfeasible) {
        counters_.memo_hits.fetch_add(1, std::memory_order_relaxed);
        control.count_candidate(/*simulated=*/false);
        return false;
      }
    }
    counters_.simulations.fetch_add(1, std::memory_order_relaxed);
    control.count_candidate(/*simulated=*/true);
    std::optional<PlanResult> result;
    try {
      result = simulate_candidate(blocks, policies, strategy, &serial_inc);
    } catch (const InfeasibleError&) {
    }
    if (!memoized)
      candidate_memo_->store(key,
                             result ? result->iteration_time : kInfeasible);
    if (result && (!best || result->iteration_time < best->iteration_time)) {
      best = std::move(result);
      // The incumbent's replay becomes the diff baseline for everything
      // that follows (neighbor candidates share most of its op prefix).
      rebase_incremental(serial_inc, best->blocks, best->policies, strategy);
      // Publish the artifact snapshot BEFORE the progress flag: an
      // observer that sees best_cost become finite must also find the
      // best-so-far plan attached.
      if (on_improved) on_improved(*best);
      control.report_best(best->iteration_time);
      return true;
    }
    return false;
  };
  // Policy routing itself can be infeasible for a candidate blocking (its
  // spill fits no offload tier); skip such candidates like any deadlock.
  const auto consider_blocking = [&](const std::vector<sim::Block>& blocks) {
    try {
      consider(blocks, initial_policies(blocks));
    } catch (const InfeasibleError&) {
    }
  };

  const int max_blocks = std::min<int>(
      options_.max_blocks, static_cast<int>(cut_points_.size()) - 1);

  // Per-block cost precompute for an enumeration range: the balanced
  // blockings for k in [lo, hi] share extents heavily, so collect the
  // union once and cost it with par_transform (the std::execution::par
  // graph-cost idiom; a thread-chunk loop on builds whose parallel STL is
  // serial). compute_block_cost is pure, so this is a warm-up of the
  // memo, not a semantic change.
  const auto precompute_block_costs = [&](int lo, int hi) {
    std::set<std::uint64_t> seen_extents;
    std::vector<sim::Block> todo;
    std::set<std::vector<int>> seen_cuts;
    for (int k = lo; k <= hi; ++k) {
      auto cuts = balanced_boundaries(k);
      if (!seen_cuts.insert(cuts).second) continue;
      for (const auto& b : blocks_from_boundaries(cuts))
        if (seen_extents.insert(block_key(b)).second) todo.push_back(b);
    }
    std::vector<sim::BlockCost> costs;
    par_transform(todo, costs, [&](const sim::Block& b) {
      return sim::compute_block_cost(model_, b, device_);
    });
    for (std::size_t i = 0; i < todo.size(); ++i)
      block_cost_memo_->store(block_key(todo[i]), costs[i]);
  };

  const auto enumerate_blockings = [&](int lo, int hi) {
    obs::Span span("opt1.enumerate", "search");
    span.arg("lo", lo);
    span.arg("hi", hi);
    precompute_block_costs(lo, hi);
    std::set<std::vector<int>> seen;
    for (int k = lo; k <= hi; ++k) {
      auto cuts = balanced_boundaries(k);
      if (!seen.insert(cuts).second) continue;
      const auto blocks = blocks_from_boundaries(cuts);
      consider_blocking(blocks);
      if (options_.enable_recompute && blocks.size() >= 2) {
        // Pure-rematerialization corner of the policy space (keeps KARMA's
        // search a superset of Checkmate-style checkpoint-density scans).
        std::vector<BlockPolicy> remat(blocks.size(), BlockPolicy::kRecompute);
        remat.back() = BlockPolicy::kResident;
        consider(blocks, remat);
      }
    }
  };

  if (seed_blocks && seed_policies && !seed_blocks->empty() &&
      seed_blocks->size() == seed_policies->size()) {
    // ---- Warm start (calib::repair): the cached plan is the incumbent.
    warm_started = true;
    consider(*seed_blocks, *seed_policies);
    // Re-route the seed blocking under THIS planner's (possibly
    // recalibrated) cost model — the cheapest place a changed table can
    // flip a block's swap/recompute/tier decision.
    consider_blocking(*seed_blocks);
    if (options_.enable_recompute && seed_blocks->size() >= 2) {
      std::vector<BlockPolicy> remat(seed_blocks->size(),
                                     BlockPolicy::kRecompute);
      remat.back() = BlockPolicy::kResident;
      consider(*seed_blocks, remat);
    }
    // A small block-count neighborhood instead of the full k scan: cost
    // drift rarely moves the optimal count far, and the anneal below can
    // still slide every boundary the drift did move.
    const int seed_k = static_cast<int>(seed_blocks->size());
    enumerate_blockings(std::max(options_.min_blocks, seed_k - 2),
                        std::min(max_blocks, seed_k + 2));
    // Coarse probes across the rest of the count range guard against a
    // REGIME shift the neighborhood cannot see: a table that re-prices
    // swap vs recompute can move the optimum to a structurally different
    // blocking (e.g. many fine-grained swapped blocks instead of a few
    // recomputed ones). One candidate every kProbeStride counts keeps
    // this a fraction of the cold enumeration; if a probe takes the
    // incumbency, its own neighborhood is refined like the seed's was.
    constexpr int kProbeStride = 4;
    int best_probe_k = -1;
    obs::Span probe_span("repair.probe", "search");
    probe_span.arg("stride", kProbeStride);
    for (int k = options_.min_blocks; k <= max_blocks; k += kProbeStride) {
      if (k >= seed_k - 2 && k <= seed_k + 2) continue;  // already scanned
      bool improved = false;
      try {
        const auto blocks = blocks_from_boundaries(balanced_boundaries(k));
        improved = consider(blocks, initial_policies(blocks));
        if (options_.enable_recompute && blocks.size() >= 2) {
          std::vector<BlockPolicy> remat(blocks.size(),
                                         BlockPolicy::kRecompute);
          remat.back() = BlockPolicy::kResident;
          if (consider(blocks, remat)) improved = true;
        }
      } catch (const InfeasibleError&) {
      }
      if (improved) best_probe_k = k;
    }
    probe_span.end();
    if (best_probe_k >= 0)
      enumerate_blockings(std::max(options_.min_blocks, best_probe_k - 2),
                          std::min(max_blocks, best_probe_k + 2));
  }
  if (!best) {
    // ---- Opt-1: enumerate block counts over clean cut points. ----
    // (Also the warm-start fallback: an infeasible seed — e.g. a plan
    // cached for a different capacity — degrades to the full cold search
    // rather than failing where plan() would succeed.)
    warm_started = false;
    enumerate_blockings(options_.min_blocks, max_blocks);
  }
  if (!best)
    throw std::runtime_error(
        "KarmaPlanner: no feasible blocking for model '" + model_.name() +
        "' on device " + device_.name);

  // ---- Opt-1 refinement: portfolio anneal of boundary positions (the
  // MIDACO stand-in, parallelized lazy-SMP style — DESIGN.md §14). ----
  if (options_.anneal_iterations > 0 && best->blocks.size() > 2) {
    Rng rng(options_.seed);
    std::vector<int> init_cuts;
    init_cuts.push_back(0);
    for (const auto& b : best->blocks) init_cuts.push_back(b.last_layer);

    const int workers = std::max(1, options_.anneal_workers);
    anneal_workers_used = workers;
    obs::Span anneal_span("opt1.anneal", "search");
    anneal_span.arg("workers", workers);
    anneal_span.arg("iterations", options_.anneal_iterations);
    // Per-worker incremental contexts, all seeded from the incumbent
    // best's replay; each worker rebases onto its own walk as it accepts
    // moves (one recorded suffix replay per acceptance — evaluations
    // themselves record nothing). base_cuts remembers which state the
    // worker's baseline simulates so a re-acceptance never rebases twice.
    struct WorkerCtx {
      IncrementalCtx inc;
      /// The state inc.base simulates, so a re-acceptance of the state
      /// the baseline already covers never re-records it. Rebasing on
      /// every other accepted move keeps the baseline glued to the walk:
      /// each evaluation then diffs against the state it was proposed
      /// from, which maximizes the shared op prefix.
      std::vector<int> base_cuts;
      int accepts_since_rebase = 0;
    };
    std::vector<WorkerCtx> worker_ctx(static_cast<std::size_t>(workers));
    for (auto& wc : worker_ctx) {
      wc.inc.base = serial_inc.base;
      wc.base_cuts = init_cuts;
    }

    const std::function<double(const std::vector<int>&, int)> energy =
        [&](const std::vector<int>& cuts, int w) {
          WorkerCtx& wc = worker_ctx[static_cast<std::size_t>(w)];
          double value = std::numeric_limits<double>::infinity();
          try {
            const auto blocks = blocks_from_boundaries(cuts);
            value = cached_objective(blocks, initial_policies(blocks),
                                     &wc.inc);
          } catch (const InfeasibleError&) {
          }
          return value;
        };
    const std::function<void(const std::vector<int>&, int)> on_accept =
        [&](const std::vector<int>& cuts, int w) {
          WorkerCtx& wc = worker_ctx[static_cast<std::size_t>(w)];
          if (wc.base_cuts == cuts) return;
          if (++wc.accepts_since_rebase < 4) return;
          try {
            const auto blocks = blocks_from_boundaries(cuts);
            rebase_incremental(wc.inc, blocks, initial_policies(blocks),
                               strategy);
            wc.base_cuts = cuts;
            wc.accepts_since_rebase = 0;
          } catch (const InfeasibleError&) {
            // An infeasible state is never accepted from a feasible one;
            // belt-and-braces only. The old baseline stays in place.
          }
        };
    const std::function<std::vector<int>(const std::vector<int>&, Rng&)>
        neighbor = [&](const std::vector<int>& cuts, Rng& r) {
          // Move one interior boundary to an adjacent clean cut point.
          auto next = cuts;
          if (next.size() <= 2) return next;
          const std::size_t pick =
              1 + static_cast<std::size_t>(r.next_below(next.size() - 2));
          const auto it = std::lower_bound(cut_points_.begin(),
                                           cut_points_.end(), next[pick]);
          const bool up = r.next_below(2) == 1;
          if (up && it + 1 != cut_points_.end())
            next[pick] = *(it + 1);
          else if (!up && it != cut_points_.begin())
            next[pick] = *(it - 1);
          // Keep strictly increasing; otherwise return unchanged.
          for (std::size_t i = 1; i < next.size(); ++i)
            if (next[i] <= next[i - 1]) return cuts;
          return next;
        };
    // The documented stable-reduction key: the boundary vector rendered
    // as text, compared lexicographically.
    const std::function<std::string(const std::vector<int>&)> reduce_key =
        [](const std::vector<int>& cuts) {
          std::string key;
          for (const int c : cuts) {
            key += std::to_string(c);
            key += ',';
          }
          return key;
        };
    // Doubles as the per-worker trace hook: both callbacks run on the
    // worker's own thread, so the emitted slice lands on that thread's
    // trace track (one "anneal.worker" lane per portfolio member).
    std::vector<std::uint64_t> worker_trace_start(
        static_cast<std::size_t>(workers), 0);
    const std::function<void(int, bool)> worker_gauge =
        [&control, &worker_trace_start](int w, bool starting) {
          if (starting) {
            if (obs::tracing_enabled())
              worker_trace_start[static_cast<std::size_t>(w)] =
                  obs::trace_now_us();
            control.worker_started();
          } else {
            control.worker_finished();
            if (obs::tracing_enabled())
              obs::emit_complete(
                  "anneal.worker", "search",
                  worker_trace_start[static_cast<std::size_t>(w)],
                  obs::trace_now_us(), "worker", w);
          }
        };
    solver::AnnealParams params;
    params.iterations = options_.anneal_iterations;
    params.initial_temperature = best->iteration_time * 0.05;
    // Belt to the energy lambda's check_stop: a tripped token also
    // truncates each walk between iterations (e.g. during runs of
    // rejected no-op moves that never call the energy at all).
    if (control.valid())
      params.should_stop = [&control] { return control.should_stop(); };
    const auto reduced = solver::portfolio_anneal<std::vector<int>>(
        init_cuts, energy, neighbor, params, workers, rng, reduce_key,
        on_accept, worker_gauge);
    consider_blocking(blocks_from_boundaries(reduced.state));
  }

  // ---- Opt-2: greedy recompute interleave (constraint 10.1). ----
  if (options_.enable_recompute) {
    obs::Span span("opt2.flips", "search");
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t b = 0; b < best->policies.size(); ++b) {
        if (!is_swap_policy(best->policies[b])) continue;
        const auto& cost = best->plan.costs[b];
        // Constraint 10.1 pre-filter: recomputing this block must be
        // cheaper than swapping it back in from wherever it lives (NVMe
        // reads are slower, so storage-bound blocks flip more readily).
        const Seconds swap_in_time = device_.read_from_tier_time(
            swap_tier_of(best->policies[b]), cost.act_bytes);
        if (cost.fwd_time >= swap_in_time) continue;
        auto policies = best->policies;
        policies[b] = BlockPolicy::kRecompute;
        // After an accepted flip the outer loop restarts, re-trying every
        // flip it already scored against the same base — those repeats
        // are memo hits inside consider(), not fresh replays.
        if (consider(best->blocks, policies)) improved = true;
      }
    }
  }
  // Every candidate evaluation request either replayed or was served by
  // the memo: candidates == simulations + memo_hits, by construction.
  SearchStats stats;
  stats.candidates = candidate_memo_->lookups();
  stats.simulations = counters_.simulations.load(std::memory_order_relaxed);
  stats.memo_hits = counters_.memo_hits.load(std::memory_order_relaxed);
  stats.block_cost_lookups = block_cost_memo_->lookups();
  stats.block_cost_hits = block_cost_memo_->hits();
  stats.incremental_resumes =
      counters_.incremental_resumes.load(std::memory_order_relaxed);
  stats.resumed_ops_saved =
      counters_.resumed_ops_saved.load(std::memory_order_relaxed);
  stats.anneal_workers = anneal_workers_used;
  stats.warm_started = warm_started;
  stats.search_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    search_start)
          .count();
  best->search = stats;
  return std::move(*best);
}

}  // namespace karma::core
