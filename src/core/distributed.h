// Data-parallel KARMA: the 5-stage pipeline of Sec. III-G / Fig. 3.
//
// Stages per block b, per iteration:
//   (1,2) capacity-based swap + interleaved recompute (as single-GPU),
//   (3)   gradients swap out to the host right after B(b), overlapped
//         with the swap-ins of earlier blocks on the other DMA direction,
//   (4)   *phased* AllReduce: finished blocks exchange without waiting
//         for the rest (MG-WFBP grouping from src/net),
//   (5)   CPU-side weight update, overlapped with everything else, before
//         the (updated) weights return to the device for the next
//         iteration's forward.
//
// Two weight regimes are handled:
//   - weights fit on the device (CNNs): weights stay resident; after the
//     CPU update the refreshed values are copied back in place;
//   - weights exceed the device (Megatron-LM, Turing-NLG): weights are
//     themselves swapped per block — in for F(b), dropped after, in again
//     for B(b), dropped with the gradient swap-out. This is what makes
//     pure data parallelism possible for billion-parameter models.
//
// All ranks are symmetric in synchronous data parallelism, so simulating
// one rank's pipeline with the collective costs from src/net reproduces
// the cluster's iteration time.
#pragma once

#include <optional>

#include "src/core/planner.h"
#include "src/net/phased_exchange.h"

namespace karma::core {

enum class ExchangeMode { kBulk, kPerBlock, kMerged };
enum class UpdateSite { kCpu, kDevice };

struct DistributedOptions {
  int num_gpus = 2;
  net::NetSpec net = net::abci_net();
  ExchangeMode exchange = ExchangeMode::kMerged;
  UpdateSite update = UpdateSite::kCpu;
  /// Iterations to simulate; the steady-state time is measured on the
  /// last one (the first iteration has no update/swap-back pipeline
  /// running into its forward phase; Fig. 3 notes iterations after the
  /// 2nd look like the 2nd).
  int iterations = 2;
  PlannerOptions planner;
  /// Fraction of parameter+gradient+optimizer state each rank must hold
  /// when stacking KARMA on top of ZeRO-style partitioning (1.0 = plain
  /// data parallelism; 1/N for ZeRO stage 3). Scales the weight swap
  /// traffic per rank.
  double weight_shard_fraction = 1.0;
};

struct DistributedResult {
  sim::Plan plan;
  sim::ExecutionTrace trace;
  Seconds iteration_time = 0.0;        ///< steady-state (last iteration)
  Seconds first_iteration_time = 0.0;
  net::ExchangePlan exchange;
  bool weights_resident = true;
  std::vector<sim::Block> blocks;
  std::vector<BlockPolicy> policies;
};

/// Plans and simulates data-parallel KARMA for `model` (built at the
/// *per-GPU* batch size). Throws std::runtime_error when infeasible.
///
/// Internal implementation entry: the public door is karma::api::Session
/// with PlanRequest::distributed set — same search, but returning the
/// unified Plan artifact and structured PlanError diagnostics (per-tier
/// shard deficits included). Only core itself (elastic replanning) and
/// white-box tests call this directly; the deprecated-shim window for
/// external callers is closed.
///
/// `control` / `on_improved` follow the KarmaPlanner::plan contract: the
/// token is polled per candidate blocking (raising SearchInterrupted),
/// each engine-ranked variant counts one candidate, and every new
/// incumbent best is published through the callback.
DistributedResult plan_data_parallel(
    const graph::Model& model, const sim::DeviceSpec& device,
    const DistributedOptions& options, const CancelToken& control = {},
    const std::function<void(const DistributedResult&)>& on_improved = {});

}  // namespace karma::core
