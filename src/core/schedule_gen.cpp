#include "src/core/schedule_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/graph/memory_model.h"
#include "src/tier/spill.h"
#include "src/util/infeasible.h"

namespace karma::core {

const char* block_policy_name(BlockPolicy policy) {
  switch (policy) {
    case BlockPolicy::kResident: return "resident";
    case BlockPolicy::kSwap: return "swap";
    case BlockPolicy::kRecompute: return "recompute";
    case BlockPolicy::kSwapNvme: return "swap-nvme";
  }
  return "?";
}

tier::Tier swap_tier_of(BlockPolicy policy) {
  if (policy == BlockPolicy::kSwapNvme) return tier::Tier::kNvme;
  return tier::Tier::kHost;
}

std::vector<BlockPolicy> capacity_based_policies(
    const std::vector<sim::Block>& blocks,
    const std::vector<sim::BlockCost>& costs, Bytes act_budget) {
  const auto nb = blocks.size();
  std::vector<BlockPolicy> policies(nb, BlockPolicy::kSwap);
  if (nb == 0) return policies;

  // Headroom that must stay free for staging: the two largest swapped
  // blocks could be in flight (one swapping in, one being consumed) plus
  // the boundary checkpoints recomputes pin. Conservative but cheap; the
  // engine-backed search discards any policy set that still deadlocks.
  Bytes max_act = 0;
  for (const auto& c : costs) max_act = std::max(max_act, c.act_bytes);
  const Bytes headroom = 2 * max_act;

  // Keep the tail resident while it fits (Fig. 2b: the blocks needed at
  // the start of the backward phase should never leave the device).
  Bytes resident = 0;
  for (std::size_t i = nb; i-- > 0;) {
    const Bytes act = costs[i].act_bytes;
    if (resident + act + headroom <= act_budget) {
      policies[i] = BlockPolicy::kResident;
      resident += act;
    } else {
      break;  // a non-suffix resident set would not help the phase switch
    }
  }
  return policies;
}

std::vector<BlockPolicy> tiered_policies(
    const std::vector<sim::Block>& blocks,
    const std::vector<sim::BlockCost>& costs, Bytes act_budget,
    const tier::StorageHierarchy& hierarchy, Bytes reserved_host) {
  auto policies = capacity_based_policies(blocks, costs, act_budget);

  // Collect swapped blocks descending: the router fills the innermost tier
  // (host) first, so listing the blocks needed soonest in the backward
  // pass first gives them DRAM and spills the early blocks to NVMe.
  std::vector<std::size_t> order;
  std::vector<Bytes> payloads;
  for (std::size_t b = blocks.size(); b-- > 0;) {
    if (policies[b] == BlockPolicy::kSwap) {
      order.push_back(b);
      payloads.push_back(costs[b].act_bytes);
    }
  }
  const auto routes = tier::route_spills(payloads, hierarchy, reserved_host);
  for (std::size_t i = 0; i < order.size(); ++i)
    if (routes[i].destination == tier::Tier::kNvme)
      policies[order[i]] = BlockPolicy::kSwapNvme;
  return policies;
}

ShardResidency ShardResidency::from_costs(
    const std::vector<sim::BlockCost>& costs, double shard_fraction) {
  ShardResidency shards;
  for (const auto& c : costs) {
    shards.pinned_weight_bytes += static_cast<Bytes>(std::llround(
        static_cast<double>(c.param_bytes) * shard_fraction));
    shards.transient_gradient_bytes += static_cast<Bytes>(std::llround(
        static_cast<double>(c.grad_bytes) * shard_fraction));
  }
  return shards;
}

std::optional<tier::StorageHierarchy> admit_tiered_plan(
    const sim::DeviceSpec& device, const std::vector<sim::BlockCost>& costs,
    const std::vector<BlockPolicy>& policies, Bytes reserved_host,
    const ShardResidency& shards) {
  // Static rejection: every tier must be able to hold what the policy set
  // routes to it, counting the worst case where all of a tier's swapped
  // blocks are offloaded at once (true between the phases). Host-pinned
  // optimizer state and the distributed pipeline's shard residency —
  // master weight shards plus all gradients in flight — are charged
  // before any activation spill; admitting that worst case statically is
  // what lets the engine's bounded per-class ledger run without deadlock.
  Bytes host_spill = 0, nvme_spill = 0;
  for (std::size_t b = 0; b < policies.size(); ++b) {
    if (policies[b] == BlockPolicy::kSwap)
      host_spill += costs[b].act_bytes;
    else if (policies[b] == BlockPolicy::kSwapNvme)
      nvme_spill += costs[b].act_bytes;
  }
  if (nvme_spill > 0 && !device.has_nvme())
    throw InfeasibleError(
        "admit_tiered_plan: swap-nvme policy on device '" + device.name +
        "' which has no NVMe tier");
  if (device.host_capacity > 0 &&
      host_spill + reserved_host + shards.total() > device.host_capacity)
    throw InfeasibleError(
        "admit_tiered_plan: host tier overflow (" + format_bytes(host_spill) +
        " spilled + " + format_bytes(reserved_host) + " reserved + " +
        format_bytes(shards.pinned_weight_bytes) + " weight shards + " +
        format_bytes(shards.transient_gradient_bytes) + " gradients > " +
        format_bytes(device.host_capacity) + " DRAM); route blocks to NVMe");
  if (device.has_nvme() && nvme_spill > device.nvme_capacity)
    throw InfeasibleError(
        "admit_tiered_plan: NVMe tier overflow (" + format_bytes(nvme_spill) +
        " spilled > " + format_bytes(device.nvme_capacity) + ")");
  if (device.host_capacity <= 0 && !device.has_nvme()) return std::nullopt;

  tier::StorageHierarchy hierarchy = sim::hierarchy_of(device);
  if (reserved_host <= 0) return hierarchy;
  // Pre-charge the reserve by shrinking the host tier the engine's ledger
  // sees; an unbounded host absorbs it without accounting.
  std::vector<tier::TierSpec> tiers = hierarchy.tiers();
  for (auto& t : tiers)
    if (t.tier == tier::Tier::kHost && !t.unbounded())
      t.capacity -= reserved_host;
  return tier::StorageHierarchy(std::move(tiers));
}

std::vector<bool> blocks_with_long_skips(
    const graph::Model& model, const std::vector<sim::Block>& blocks) {
  const auto nb = blocks.size();
  std::vector<bool> mask(nb, false);
  // block_of[layer] lookup.
  std::vector<int> block_of(model.num_layers(), 0);
  for (std::size_t b = 0; b < nb; ++b)
    for (int l = blocks[b].first_layer; l < blocks[b].last_layer; ++l)
      block_of[static_cast<std::size_t>(l)] = static_cast<int>(b);
  for (const auto& layer : model.layers()) {
    for (int succ : model.succs(layer.id)) {
      const int from = block_of[static_cast<std::size_t>(layer.id)];
      const int to = block_of[static_cast<std::size_t>(succ)];
      if (to > from + 1) mask[static_cast<std::size_t>(from)] = true;
    }
  }
  return mask;
}

sim::Plan build_training_plan(const graph::Model& model,
                              const sim::DeviceSpec& device,
                              const std::vector<sim::Block>& blocks,
                              const std::vector<BlockPolicy>& policies,
                              const std::string& strategy,
                              const ScheduleOptions& options,
                              const std::vector<sim::BlockCost>*
                                  precomputed_costs) {
  if (blocks.size() != policies.size())
    throw std::invalid_argument("build_training_plan: size mismatch");
  if (precomputed_costs && precomputed_costs->size() != blocks.size())
    throw std::invalid_argument(
        "build_training_plan: precomputed costs/blocks size mismatch");
  const int nb = static_cast<int>(blocks.size());

  sim::Plan plan;
  plan.strategy = strategy;
  plan.blocks = blocks;
  if (precomputed_costs) {
    plan.costs = *precomputed_costs;
  } else {
    plan.costs.reserve(blocks.size());
    for (const auto& b : blocks)
      plan.costs.push_back(sim::compute_block_cost(model, b, device));
  }

  // Weights and weight gradients stay on the device for single-GPU plans
  // (the distributed planner handles weight swapping separately).
  Bytes weights = 0;
  for (const auto& c : plan.costs) weights += c.param_bytes + c.grad_bytes;
  if (weights >= device.memory_capacity)
    throw InfeasibleError(
        "build_training_plan: weights alone exceed device capacity; use the "
        "distributed (weight-swapping) planner");
  plan.baseline_resident = weights;
  plan.capacity = device.memory_capacity - weights;

  // ---- Per-tier plan admission (tiered-offload extension) ----
  plan.hierarchy = admit_tiered_plan(device, plan.costs, policies,
                                     options.reserved_host_bytes);

  int stage = 0;
  const auto push = [&](sim::Op op, int op_stage) {
    plan.ops.push_back(op);
    plan.stage_of.push_back(op_stage);
    return static_cast<int>(plan.ops.size()) - 1;
  };

  // ---- Forward phase ----
  for (int b = 0; b < nb; ++b) {
    sim::Op fwd;
    fwd.kind = sim::OpKind::kForward;
    fwd.block = b;
    fwd.retains = policies[static_cast<std::size_t>(b)] != BlockPolicy::kRecompute;
    push(fwd, ++stage);
    if (is_swap_policy(policies[static_cast<std::size_t>(b)])) {
      // Swap-out trails on the D2H stream (or the NVMe-write stream for
      // storage-bound blocks); same display stage as the next forward
      // (paper notation "F2||Sout1").
      sim::Op out;
      out.kind = sim::OpKind::kSwapOut;
      out.block = b;
      out.tier = swap_tier_of(policies[static_cast<std::size_t>(b)]);
      push(out, stage + (b + 1 < nb ? 1 : 0));
    }
  }
  const int last_forward_index = [&] {
    for (int i = static_cast<int>(plan.ops.size()) - 1; i >= 0; --i)
      if (plan.ops[static_cast<std::size_t>(i)].kind == sim::OpKind::kForward)
        return i;
    return -1;
  }();

  // ---- Backward phase ----
  // Swap-ins are issued descending (the order backward consumes them).
  // The first `prefetch_window` of them may start as soon as the forward
  // pass tail completes and memory frees (capacity-based greediness); the
  // rest are gated on backward progress to guarantee liveness.
  std::vector<int> swapped;  // descending block ids (host and NVMe alike)
  for (int b = nb - 1; b >= 0; --b)
    if (is_swap_policy(policies[static_cast<std::size_t>(b)]))
      swapped.push_back(b);

  std::vector<int> backward_index(static_cast<std::size_t>(nb), -1);
  std::size_t next_swap = 0;  // index into `swapped` not yet issued

  const auto issue_swap_ins = [&](int gate_op, int count, int display_stage) {
    for (int k = 0; k < count && next_swap < swapped.size(); ++k) {
      sim::Op in;
      in.kind = sim::OpKind::kSwapIn;
      in.block = swapped[next_swap];
      in.tier = swap_tier_of(
          policies[static_cast<std::size_t>(swapped[next_swap])]);
      in.after_op = gate_op;
      push(in, display_stage);
      ++next_swap;
    }
  };

  // Initial window, gated only on the end of the forward pass.
  issue_swap_ins(last_forward_index, options.prefetch_window, stage);

  int last_backward_pushed = -1;
  for (int b = nb - 1; b >= 0; --b) {
    if (policies[static_cast<std::size_t>(b)] == BlockPolicy::kRecompute) {
      // A recompute reads its predecessor block's boundary output; if the
      // predecessor is swap-policy its swap-in must be *issued* by now
      // (the engine still decides when it actually runs). Fast-forward
      // the prefetch queue to cover it.
      while (next_swap < swapped.size() && swapped[next_swap] >= b - 1) {
        issue_swap_ins(last_backward_pushed >= 0 ? last_backward_pushed
                                                 : last_forward_index,
                       1, stage);
      }
      sim::Op re;
      re.kind = sim::OpKind::kRecompute;
      re.block = b;
      // The boundary checkpoint is already resident; rematerialize the
      // interior activations only.
      re.alloc = std::max<Bytes>(
          0, plan.costs[static_cast<std::size_t>(b)].act_bytes -
                 plan.costs[static_cast<std::size_t>(b)].boundary_bytes);
      push(re, ++stage);
    }
    sim::Op bwd;
    bwd.kind = sim::OpKind::kBackward;
    bwd.block = b;
    // The gradient wavefront borrows the bytes freed as activations are
    // consumed within the block (documented approximation, DESIGN.md §5).
    bwd.alloc = 0;
    bwd.free = plan.costs[static_cast<std::size_t>(b)].act_bytes;
    backward_index[static_cast<std::size_t>(b)] =
        push(bwd, is_swap_policy(policies[static_cast<std::size_t>(b)])
                      ? ++stage
                      : stage);
    last_backward_pushed = backward_index[static_cast<std::size_t>(b)];
    // Each completed backward opens the next prefetch slot.
    issue_swap_ins(backward_index[static_cast<std::size_t>(b)], 1, stage);
  }

  return plan;
}

sim::Plan build_incore_plan(const graph::Model& model,
                            const sim::DeviceSpec& device,
                            const std::vector<sim::Block>& blocks) {
  const std::vector<BlockPolicy> policies(blocks.size(),
                                          BlockPolicy::kResident);
  return build_training_plan(model, device, blocks, policies, "in-core");
}

}  // namespace karma::core
