// The paper's occupancy performance model (Sec. III-E, Eq. 1-8).
//
// This is the *analytic* projection KARMA optimizes: given a blocking and
// the device's swap-in throughput, estimate per-step occupancy and the
// catch-up step theta at which processing overtakes prefetching (Eq. 7).
// The discrete-event engine is the ground truth these estimates are
// validated against in tests; the planner uses the analytic form as a
// cheap pre-filter and the engine for final candidate ranking.
#pragma once

#include <vector>

#include "src/sim/plan.h"

namespace karma::core {

/// Block-adjusted swap-in throughput (Eq. 4): the minimum of far-memory,
/// near-memory, and interconnect throughput. On every platform we model,
/// the interconnect is the binding term.
Bandwidth swap_in_throughput(const sim::DeviceSpec& device);

struct OccupancyEstimate {
  /// Per-step occupancy O_j (Eq. 8) for the backward phase, one entry per
  /// block in processing (back-to-front) order. 1.0 until theta, then the
  /// swap-bound regime of Eq. 6.
  std::vector<double> per_step;
  /// The catch-up step theta (Eq. 7): index into per_step at which
  /// processing first overtakes swap-in; per_step.size() if never.
  std::size_t theta = 0;
  /// Estimated backward-phase makespan implied by the occupancies.
  Seconds backward_time = 0.0;
  /// Mean occupancy over all steps — the objective of Opt. Problem 1.
  double mean() const;
};

/// Evaluates the model for a backward pass over `blocks` (model order)
/// where `swapped[b]` marks blocks whose activations must be swapped in.
/// `resident_budget` is the device capacity available for activations
/// (Eq. 3's initial B_avail).
OccupancyEstimate estimate_backward_occupancy(
    const std::vector<sim::Block>& blocks,
    const std::vector<sim::BlockCost>& costs, const std::vector<bool>& swapped,
    const sim::DeviceSpec& device, Bytes resident_budget);

}  // namespace karma::core
