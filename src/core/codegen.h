// Training-script generation — the final step of KARMA's workflow
// (Fig. 1, step 5: "replaces the original model code with the new one").
//
// The paper emits a new PyTorch training script whose forward/backward is
// rewritten around the chosen schedule, with cudaMemPrefetchAsync calls
// and synchronization placed per Sec. III-H. We generate that script as
// text from the Plan IR; tests assert the structure (prefetch before use,
// sync placement, recompute wrapped in no-grad re-forward) rather than
// executing Python.
#pragma once

#include <string>

#include "src/sim/plan.h"

namespace karma::core {

struct CodegenOptions {
  std::string model_var = "model";
  std::string framework = "pytorch";  ///< only target currently emitted
  bool emit_comments = true;
};

/// Renders `plan` as a PyTorch-style training-step function. Deterministic
/// for a given plan.
std::string generate_training_script(const sim::Plan& plan,
                                     const CodegenOptions& options = {});

}  // namespace karma::core
