// KARMA's two-tier optimization (paper Fig. 4) and planner facade.
//
// Optimization problem 1 (blocking): find the partition of layers into
// contiguous blocks that maximizes occupancy subject to the memory
// capacity constraint. The paper solves an ILP with MIDACO; the instances
// are small (it converges "in under four minutes"), so we enumerate
// candidate partitions over clean cut points (positions no skip edge
// crosses), rank them by *actual simulated makespan* — the engine is the
// objective, which is strictly more faithful than a linear surrogate —
// and refine with simulated annealing (DESIGN.md §2).
//
// Optimization problem 2 (recompute interleave): starting from the
// capacity-based policy assignment, greedily flip swapped blocks to
// recompute when constraint (10.1) holds and the flip reduces the
// simulated makespan (stall reduction, Sec. III-F).
//
// Tiered offload (DESIGN.md §7): when the device models a bounded host
// or an NVMe tier, the per-block vocabulary is tier-qualified —
// {resident, swap(host), swap(nvme), recompute} — with spill routing by
// tier::route_spills and placements still chosen by simulated makespan.
// Seed devices (unbounded host) plan bit-identically to the original
// two-tier search.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/schedule_gen.h"
#include "src/sim/engine.h"
#include "src/solver/memo.h"
#include "src/util/cancel.h"

namespace karma::core {

/// Thrown by the planners when a cooperative CancelToken stops the search
/// (cancel / deadline / candidate budget) before it ran to completion.
/// Deliberately NOT derived from std::exception: the planners' documented
/// infeasibility channel is karma::InfeasibleError (a runtime_error), and
/// the infeasible-candidate handlers in the search catch exactly that — an
/// interrupt must tunnel through all of them (and through any legacy
/// std::exception handler between here and the service layer), which
/// converts it into PlanError{kCancelled|kDeadline} with the best-so-far
/// plan attached (published incrementally via the on_improved callback).
struct SearchInterrupted {
  StopReason reason = StopReason::kCancelled;
};

struct PlannerOptions {
  bool enable_recompute = true;  ///< false = pure capacity-based KARMA
  int min_blocks = 2;
  int max_blocks = 48;
  int anneal_iterations = 120;   ///< boundary-refinement budget
  /// Portfolio width of the boundary anneal (DESIGN.md §14): this many
  /// lazy-SMP workers split anneal_iterations between them, diversified
  /// by rng stream and temperature, reduced with the stable (energy, key)
  /// tie-break. Plan-affecting (it reshapes the explored walk), so it is
  /// part of the request fingerprint. 1 = one serial walk.
  int anneal_workers = 4;
  /// Resume candidate replays from the deepest engine checkpoint shared
  /// with the incumbent's plan instead of simulating from op 0
  /// (DESIGN.md §14). Bit-identical to full replay by construction —
  /// results never depend on this switch, so it is NOT fingerprinted; it
  /// exists so benches can price the optimization.
  bool incremental_resim = true;
  /// Replay candidates with the seed engine's O(n)-sweep event loop
  /// instead of the indexed one (sim::EngineOptions). Results are
  /// bit-identical; like incremental_resim this is excluded from the
  /// request fingerprint. Bench/testing only: bench/fig_search.cpp uses
  /// it so its baseline leg runs the exact pre-PR-8 search code path.
  bool reference_engine_loop = false;
  std::uint64_t seed = 0x5eed;
  ScheduleOptions schedule;
};

/// Search-effort accounting for one KarmaPlanner::plan() run (DESIGN.md
/// §10). Pre-memoization, every candidate the Opt-1/Opt-2 searches looked
/// at was a full engine replay (simulations == candidates); with the
/// candidate memo and the per-block cost memo, revisited candidates cost
/// a hash lookup and a boundary move only re-costs the two blocks it
/// actually changed. The counters make that win measurable
/// (bench_fig_plan_cache prints them cold vs warm).
struct SearchStats {
  std::int64_t candidates = 0;         ///< candidate evaluations requested
  std::int64_t simulations = 0;        ///< full engine replays actually run
  /// Candidates served by the memo with NO replay at all (a memoized best
  /// that must be re-materialized counts as a simulation instead), so
  /// candidates == simulations + memo_hits holds by construction.
  std::int64_t memo_hits = 0;
  std::int64_t block_cost_lookups = 0; ///< per-block cost requests
  std::int64_t block_cost_hits = 0;    ///< served by the block-cost memo
  /// Incremental re-simulation accounting (DESIGN.md §14): replays that
  /// resumed from an engine checkpoint instead of op 0, and the total ops
  /// those resumes did not have to re-start.
  std::int64_t incremental_resumes = 0;
  std::int64_t resumed_ops_saved = 0;
  /// Portfolio width the boundary anneal actually ran with.
  int anneal_workers = 0;
  /// True when the search was seeded from an existing plan (plan_from —
  /// the calib::repair path) instead of the full Opt-1 enumeration.
  bool warm_started = false;
  /// Wall-clock of the whole search. Observability only: timing never
  /// feeds a search decision, so plans stay deterministic.
  double search_seconds = 0.0;
  /// Cold-search wall-clock divided by this search's — filled by
  /// calib::repair when it has a cold baseline to compare against, 0
  /// otherwise. Transient like the rest of SearchStats (not serialized).
  double repair_vs_cold_speedup = 0.0;
};

struct PlanResult {
  sim::Plan plan;
  std::vector<sim::Block> blocks;
  std::vector<BlockPolicy> policies;
  sim::ExecutionTrace trace;       ///< trace of the chosen plan
  Seconds iteration_time = 0.0;    ///< = trace.makespan
  double occupancy = 0.0;
  SearchStats search;              ///< effort of the search that found it
};

/// Positions at which a block boundary does not cut any skip connection
/// (only the chain edge crosses). Always includes 0 and num_layers.
std::vector<int> clean_cut_points(const graph::Model& model);

/// Cut positions the planner actually searches over: the clean cuts when
/// they are dense enough, otherwise every position. Models like U-Net have
/// nested contracting->expansive skips that leave almost no clean cuts;
/// for those, boundaries may cross skip edges and the Sec. III-F.4 policy
/// rule (blocks with outgoing long skips are recomputed or kept resident,
/// never swapped out early) preserves the dependency instead.
std::vector<int> candidate_cut_points(const graph::Model& model);

class KarmaPlanner {
 public:
  KarmaPlanner(const graph::Model& model, sim::DeviceSpec device,
               PlannerOptions options = {});

  /// Runs Opt-1 (+ Opt-2 when enabled) and returns the best plan found.
  /// Throws std::runtime_error if no feasible plan exists (e.g. one layer
  /// alone exceeds device memory).
  ///
  /// Internal implementation entry: the public door is karma::api::Session
  /// (src/api/session.h), which wraps this search behind the PlanRequest ->
  /// Plan artifact facade with structured PlanError diagnostics instead of
  /// exceptions. Only core itself, the baselines' KARMA rows, and white-box
  /// tests call this directly; the deprecated-shim window for external
  /// callers is closed.
  ///
  /// Memoized: per-block simulated costs (keyed by block extent) and
  /// whole-candidate makespans (keyed by blocking + tier-routed policy
  /// vector) are cached for the duration of the call, so the annealer's
  /// revisits and Opt-2's repeated greedy rounds skip re-simulation —
  /// exactly, never approximately: memo values are the deterministic
  /// evaluation results, so the chosen plan is bit-identical to the
  /// unmemoized search's. The memos make a planner instance stateful;
  /// concurrent plan() calls on one instance are not supported.
  ///
  /// `control` (optional) makes the search cooperative: it is polled at
  /// every candidate boundary — the Opt-1 enumeration, each anneal step,
  /// each Opt-2 flip — and progress (candidates / simulations / memo hits
  /// / best cost) is published through it. A tripped token raises
  /// SearchInterrupted; the plan state is untouched (fresh rng + memos per
  /// call), so a later uncancelled run is bit-identical to one that was
  /// never interrupted. `on_improved` fires on every new incumbent best —
  /// the service layer snapshots these so a cancelled or expired search
  /// can still hand back the best feasible plan it saw.
  PlanResult plan(const CancelToken& control = {},
                  const std::function<void(const PlanResult&)>& on_improved =
                      {}) const;

  /// Warm-start search — the calib::repair entry (DESIGN.md §13). Skips
  /// the full Opt-1 block-count enumeration and instead seeds the
  /// incumbent from `seed_blocks`/`seed_policies` (typically a cached plan
  /// being repaired under a recalibrated cost model), plus cheap
  /// variations: the seed re-routed by this planner's policy assignment
  /// (a perturbed table can flip a block's swap/recompute/tier decision
  /// right here), the pure-remat corner, balanced blockings within
  /// +/-2 of the seed's block count, and coarse probes across the rest
  /// of the count range (refined around any probe that takes the
  /// incumbency) so a calibration that shifts the optimum to a different
  /// blocking regime entirely is still caught. The anneal and Opt-2
  /// refinements then run exactly as in plan(). Falls back to the full cold search
  /// when nothing seeded is feasible, so plan_from never fails where
  /// plan() would succeed. Sets SearchStats::warm_started.
  PlanResult plan_from(const std::vector<sim::Block>& seed_blocks,
                       const std::vector<BlockPolicy>& seed_policies,
                       const CancelToken& control = {},
                       const std::function<void(const PlanResult&)>&
                           on_improved = {}) const;

  /// Builds + simulates one candidate (exposed for tests and ablations).
  std::optional<PlanResult> evaluate(const std::vector<sim::Block>& blocks,
                                     const std::vector<BlockPolicy>& policies,
                                     const std::string& strategy) const;

  const graph::Model& model() const { return model_; }

 private:
  /// Per-context state for checkpointed incremental re-simulation
  /// (DESIGN.md §14); defined in planner.cpp. The serial phases share one,
  /// each portfolio worker owns one.
  struct IncrementalCtx;

  /// Shared search body behind plan() and plan_from(): null seed = cold
  /// Opt-1 enumeration, non-null = warm start from the seed candidate.
  PlanResult run_search(const std::vector<sim::Block>* seed_blocks,
                        const std::vector<BlockPolicy>* seed_policies,
                        const CancelToken& control,
                        const std::function<void(const PlanResult&)>&
                            on_improved) const;
  /// Builds + replays one candidate; throws karma::InfeasibleError when it
  /// cannot run (deadlock, tier overflow, no spill route). With a non-null
  /// `inc` (and options_.incremental_resim), the replay resumes from the
  /// deepest checkpoint of inc->base whose cut is within the candidate's
  /// common op prefix and records nothing — results bit-identical to the
  /// cold replay either way. Accepted candidates get their own checkpoint
  /// log via rebase_incremental.
  PlanResult simulate_candidate(const std::vector<sim::Block>& blocks,
                                const std::vector<BlockPolicy>& policies,
                                const std::string& strategy,
                                IncrementalCtx* inc) const;
  /// Re-simulates an accepted candidate once WITH checkpoint recording
  /// (resumed from the current baseline, so it costs about one suffix
  /// replay) and installs it as inc.base — the diff target for the moves
  /// that follow. No-op when incremental_resim is off.
  void rebase_incremental(IncrementalCtx& inc,
                          const std::vector<sim::Block>& blocks,
                          const std::vector<BlockPolicy>& policies,
                          const std::string& strategy) const;
  std::vector<sim::Block> blocks_from_boundaries(
      const std::vector<int>& cuts) const;
  /// Balanced selection of `k` boundaries from the clean cut points,
  /// equalizing activation bytes per block.
  std::vector<int> balanced_boundaries(int num_blocks) const;
  std::vector<BlockPolicy> initial_policies(
      const std::vector<sim::Block>& blocks) const;
  /// Memoized compute_block_cost: candidate blockings share almost all
  /// their blocks (balanced boundaries nest, the anneal moves a single
  /// boundary), so each extent's analytic cost is computed once per
  /// plan() run. Lookup/hit totals come from the memo's own counters.
  sim::BlockCost block_cost(const sim::Block& block) const;

  const graph::Model& model_;
  sim::DeviceSpec device_;
  PlannerOptions options_;
  std::vector<int> cut_points_;
  std::vector<Bytes> act_prefix_;  ///< prefix activation bytes per layer

  // ---- Opt-1/Opt-2 memo tables (reset at each plan() entry) ----
  // Sharded + atomic so the portfolio annealing workers share them
  // lock-cheap; values are deterministic functions of their keys, so
  // concurrent fills cannot diverge (solver::SharedEvalMemo). Held by
  // pointer because the sharded tables are neither movable nor copyable.
  mutable std::unique_ptr<solver::SharedEvalMemo<std::uint64_t,
                                                 sim::BlockCost>>
      block_cost_memo_;
  mutable std::unique_ptr<solver::SharedEvalMemo<std::string, double>>
      candidate_memo_;
  /// Relaxed-atomic stat accumulators, harvested into the plain
  /// SearchStats returned with the result at the end of each search.
  struct StatsCounters {
    std::atomic<std::int64_t> simulations{0};
    std::atomic<std::int64_t> memo_hits{0};
    std::atomic<std::int64_t> incremental_resumes{0};
    std::atomic<std::int64_t> resumed_ops_saved{0};
    void reset() {
      simulations = 0;
      memo_hits = 0;
      incremental_resumes = 0;
      resumed_ops_saved = 0;
    }
  };
  mutable StatsCounters counters_;
};

}  // namespace karma::core
