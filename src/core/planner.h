// KARMA's two-tier optimization (paper Fig. 4) and planner facade.
//
// Optimization problem 1 (blocking): find the partition of layers into
// contiguous blocks that maximizes occupancy subject to the memory
// capacity constraint. The paper solves an ILP with MIDACO; the instances
// are small (it converges "in under four minutes"), so we enumerate
// candidate partitions over clean cut points (positions no skip edge
// crosses), rank them by *actual simulated makespan* — the engine is the
// objective, which is strictly more faithful than a linear surrogate —
// and refine with simulated annealing (DESIGN.md §2).
//
// Optimization problem 2 (recompute interleave): starting from the
// capacity-based policy assignment, greedily flip swapped blocks to
// recompute when constraint (10.1) holds and the flip reduces the
// simulated makespan (stall reduction, Sec. III-F).
//
// Tiered offload (DESIGN.md §7): when the device models a bounded host
// or an NVMe tier, the per-block vocabulary is tier-qualified —
// {resident, swap(host), swap(nvme), recompute} — with spill routing by
// tier::route_spills and placements still chosen by simulated makespan.
// Seed devices (unbounded host) plan bit-identically to the original
// two-tier search.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/schedule_gen.h"
#include "src/sim/engine.h"

namespace karma::core {

struct PlannerOptions {
  bool enable_recompute = true;  ///< false = pure capacity-based KARMA
  int min_blocks = 2;
  int max_blocks = 48;
  int anneal_iterations = 120;   ///< boundary-refinement budget
  std::uint64_t seed = 0x5eed;
  ScheduleOptions schedule;
};

struct PlanResult {
  sim::Plan plan;
  std::vector<sim::Block> blocks;
  std::vector<BlockPolicy> policies;
  sim::ExecutionTrace trace;       ///< trace of the chosen plan
  Seconds iteration_time = 0.0;    ///< = trace.makespan
  double occupancy = 0.0;
};

/// Positions at which a block boundary does not cut any skip connection
/// (only the chain edge crosses). Always includes 0 and num_layers.
std::vector<int> clean_cut_points(const graph::Model& model);

/// Cut positions the planner actually searches over: the clean cuts when
/// they are dense enough, otherwise every position. Models like U-Net have
/// nested contracting->expansive skips that leave almost no clean cuts;
/// for those, boundaries may cross skip edges and the Sec. III-F.4 policy
/// rule (blocks with outgoing long skips are recomputed or kept resident,
/// never swapped out early) preserves the dependency instead.
std::vector<int> candidate_cut_points(const graph::Model& model);

class KarmaPlanner {
 public:
  KarmaPlanner(const graph::Model& model, sim::DeviceSpec device,
               PlannerOptions options = {});

  /// Runs Opt-1 (+ Opt-2 when enabled) and returns the best plan found.
  /// Throws std::runtime_error if no feasible plan exists (e.g. one layer
  /// alone exceeds device memory).
  ///
  /// Internal implementation entry: the public door is karma::api::Session
  /// (src/api/session.h), which wraps this search behind the PlanRequest ->
  /// Plan artifact facade with structured PlanError diagnostics instead of
  /// exceptions. Only core itself, the baselines' KARMA rows, and white-box
  /// tests call this directly; the deprecated-shim window for external
  /// callers is closed.
  PlanResult plan() const;

  /// Builds + simulates one candidate (exposed for tests and ablations).
  std::optional<PlanResult> evaluate(const std::vector<sim::Block>& blocks,
                                     const std::vector<BlockPolicy>& policies,
                                     const std::string& strategy) const;

  const graph::Model& model() const { return model_; }

 private:
  std::vector<sim::Block> blocks_from_boundaries(
      const std::vector<int>& cuts) const;
  /// Balanced selection of `k` boundaries from the clean cut points,
  /// equalizing activation bytes per block.
  std::vector<int> balanced_boundaries(int num_blocks) const;
  std::vector<BlockPolicy> initial_policies(
      const std::vector<sim::Block>& blocks) const;

  const graph::Model& model_;
  sim::DeviceSpec device_;
  PlannerOptions options_;
  std::vector<int> cut_points_;
  std::vector<Bytes> act_prefix_;  ///< prefix activation bytes per layer
};

}  // namespace karma::core
