// Fault tolerance for data-parallel KARMA (Table I's last column and
// Sec. II-B): unlike single-GPU out-of-core methods and model parallelism
// — where one device loss kills the job — data-parallel KARMA can adapt
// to faults by shrinking the worker pool [26] or relaunching with fewer
// workers [25]. This module models both recovery modes and the epoch-time
// impact of failures, and plans the post-failure configuration.
#pragma once

#include <vector>

#include "src/core/distributed.h"

namespace karma::core {

enum class RecoveryMode {
  kShrink,    ///< continue with the surviving ranks (global batch shrinks)
  kRelaunch,  ///< restart from the last checkpoint with fewer ranks
};

struct FaultEvent {
  double epoch_fraction = 0.5;  ///< when the failure hits, in [0, 1)
  int failed_ranks = 1;
};

struct ElasticOptions {
  DistributedOptions distributed;
  RecoveryMode mode = RecoveryMode::kShrink;
  /// Checkpoint cadence as a fraction of an epoch (relaunch loses at most
  /// this much progress); the paper's Sec. IV-C mitigation uses
  /// checkpoint/restart between scheduler allocations.
  double checkpoint_interval = 0.1;
  /// Fixed cost of writing/restoring a checkpoint + pool reconfiguration.
  Seconds checkpoint_cost = 60.0;
  Seconds relaunch_cost = 120.0;
};

struct ElasticResult {
  Seconds fault_free_epoch = 0.0;     ///< epoch time with no failures
  Seconds epoch_with_faults = 0.0;    ///< total epoch time including recovery
  double overhead_fraction = 0.0;     ///< (with - without) / without
  int final_ranks = 0;
  /// Per-phase iteration times (before/after each fault).
  std::vector<Seconds> phase_iteration_times;
};

/// Simulates one epoch of `samples_per_epoch` samples under the given
/// fault schedule. Each fault re-plans the 5-stage pipeline for the
/// surviving pool; remaining samples are redistributed. Throws if the
/// pool would drop below 2 ranks.
ElasticResult simulate_epoch_with_faults(
    const graph::Model& model, const sim::DeviceSpec& device,
    const ElasticOptions& options, std::int64_t samples_per_epoch,
    const std::vector<FaultEvent>& faults);

}  // namespace karma::core
