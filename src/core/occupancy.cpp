#include "src/core/occupancy.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace karma::core {

Bandwidth swap_in_throughput(const sim::DeviceSpec& device) {
  // Eq. 4: min(T_FM, T_NM, T_IC).
  return std::min({device.host_mem_bw, device.device_mem_bw, device.h2d_bw});
}

double OccupancyEstimate::mean() const {
  if (per_step.empty()) return 1.0;
  return std::accumulate(per_step.begin(), per_step.end(), 0.0) /
         static_cast<double>(per_step.size());
}

OccupancyEstimate estimate_backward_occupancy(
    const std::vector<sim::Block>& blocks,
    const std::vector<sim::BlockCost>& costs, const std::vector<bool>& swapped,
    const sim::DeviceSpec& device, Bytes resident_budget) {
  if (blocks.size() != costs.size() || blocks.size() != swapped.size())
    throw std::invalid_argument("estimate_backward_occupancy: size mismatch");
  const auto nb = blocks.size();
  const Bandwidth tput = swap_in_throughput(device);

  OccupancyEstimate est;
  est.per_step.reserve(nb);

  // Backward processes blocks nb-1 .. 0. Swap-in works through the queue
  // of swapped blocks in the same order. We track the lead (seconds of
  // compute the prefetcher is ahead of the processor); when the lead goes
  // negative, the device stalls and occupancy drops below 1 (Eq. 6/8).
  // Resident blocks at the tail give the prefetcher a head start: their
  // processing time is pure lead (theta search of Eq. 7).
  Seconds compute_clock = 0.0;  // processor position
  Seconds swap_clock = 0.0;     // prefetcher position (completion time of
                                // everything swapped so far)
  bool caught_up = false;       // whether theta has been passed (Eq. 7)
  est.theta = nb;

  // Memory guard: swap-in cannot run further ahead than the activation
  // budget allows (Eq. 3's B_avail). We approximate the in-flight bound by
  // capping the prefetcher's lead at the budget divided by throughput.
  const Seconds max_lead =
      tput > 0.0 ? static_cast<double>(std::max<Bytes>(resident_budget, 0)) / tput
                 : 0.0;

  for (std::size_t step = 0; step < nb; ++step) {
    const std::size_t b = nb - 1 - step;  // block processed at this step
    const sim::BlockCost& c = costs[b];

    // Advance the prefetcher: it continuously swaps in the next needed
    // swapped blocks, bounded by the lead cap.
    if (swapped[b]) {
      const Seconds arrival =
          std::max(swap_clock, compute_clock - max_lead) +
          static_cast<double>(c.act_bytes) / tput + device.swap_latency;
      swap_clock = arrival;
      const Seconds wait = std::max(0.0, arrival - compute_clock);
      const Seconds busy = c.bwd_time;
      est.per_step.push_back(busy / (busy + wait));  // Eq. 1 per step
      // Eq. 7: flag the catch-up step only for material stalls (numerical
      // residue from the transfer of the very first block is not a stall
      // regime change).
      if (!caught_up && wait > 1e-3 * busy) {
        caught_up = true;
        est.theta = step;
      }
      compute_clock = std::max(compute_clock, arrival) + busy;
    } else {
      // Resident (or recomputed-in-place) block: no transfer dependency.
      est.per_step.push_back(1.0);
      compute_clock += c.bwd_time;
    }
  }
  est.backward_time = compute_clock;
  return est;
}

}  // namespace karma::core
