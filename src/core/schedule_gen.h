// Schedule generation (paper Algorithm 1 + Sec. III-E/F).
//
// Given a blocking and a per-block policy — keep resident, swap, or
// discard-and-recompute — emit the Plan IR for one training iteration:
//
//   forward:  F(b) for each block in order; capacity-based swap-outs
//             trail the forwards on the D2H stream; tail blocks that fit
//             are never swapped (Fig. 2b's "no swap-out if memory
//             available");
//   backward: swap-ins are issued greedily (capacity-based prefetch,
//             bounded by a small window to guarantee liveness), recomputes
//             are interleaved on the compute stream just before the
//             backward that consumes them (Fig. 2c), backwards run
//             back-to-front.
//
// The engine turns this issue order into actual overlap; stalls appear
// exactly where a dependency or the capacity limit blocks a stream.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/sim/engine.h"
#include "src/sim/plan.h"

namespace karma::core {

enum class BlockPolicy {
  kResident,   ///< activations stay on the device between phases
  kSwap,       ///< swap-out after forward to host DRAM, swap-in before bwd
  kRecompute,  ///< discard after forward, rematerialize in backward
  kSwapNvme,   ///< swap-out to NVMe storage (tiered-offload extension)
};

const char* block_policy_name(BlockPolicy policy);

/// True for both swap flavors (host and NVMe destinations).
inline bool is_swap_policy(BlockPolicy p) {
  return p == BlockPolicy::kSwap || p == BlockPolicy::kSwapNvme;
}

/// The offload tier a swap policy targets.
tier::Tier swap_tier_of(BlockPolicy policy);

struct ScheduleOptions {
  /// How many swap-ins may be outstanding ahead of backward progress.
  /// Greedy capacity-based prefetch with a liveness bound: window w means
  /// Sin(b) is gated on the backward of block b + w.
  int prefetch_window = 2;
  /// Host DRAM pre-charged before any activation spill is admitted —
  /// optimizer state pinned on the host for CPU-side updates (ROADMAP
  /// `reserved_host`; set by karma::api::Session from its OptimizerSpec).
  /// Charged in tiered_policies routing, in build_training_plan's per-tier
  /// admission, and against the engine's host ledger. 0 = seed behavior.
  Bytes reserved_host_bytes = 0;
};

/// The capacity-based policy of Sec. III-E.2: keep the *tail* of the model
/// resident (it is needed first in the backward pass), swap everything
/// else, subject to `act_budget` bytes available for activations with
/// enough headroom left to stage swapped blocks through.
std::vector<BlockPolicy> capacity_based_policies(
    const std::vector<sim::Block>& blocks,
    const std::vector<sim::BlockCost>& costs, Bytes act_budget);

/// Tier-qualified extension of capacity_based_policies: blocks the
/// capacity rule marks for swapping are routed host-first — the latest
/// swapped blocks (needed soonest in the backward pass) claim DRAM, and
/// the overflow (the earliest blocks, which have the most prefetch slack
/// before their backward) spills to NVMe. With an unbounded host tier the
/// result is exactly the two-tier policy set. `reserved_host` bytes are
/// pre-charged to the host tier before routing (host-pinned optimizer
/// state). Throws karma::InfeasibleError when a payload fits no tier.
std::vector<BlockPolicy> tiered_policies(
    const std::vector<sim::Block>& blocks,
    const std::vector<sim::BlockCost>& costs, Bytes act_budget,
    const tier::StorageHierarchy& hierarchy, Bytes reserved_host = 0);

/// Host residency the distributed pipeline adds on top of activation
/// spills (DESIGN.md §9): the pinned master weight shards and the
/// worst-case transient gradient bytes in flight between a gradient-out
/// and the update that consumes it. Zero for single-GPU plans.
struct ShardResidency {
  Bytes pinned_weight_bytes = 0;     ///< host master copy, whole-run lifetime
  Bytes transient_gradient_bytes = 0;  ///< worst case: all grads in flight
  Bytes total() const { return pinned_weight_bytes + transient_gradient_bytes; }

  /// The residency a blocking's per-block weight/gradient shards pin on
  /// the host at `shard_fraction` (ZeRO partitioning scales each block's
  /// payload; per-block rounding matches what emit_iteration transfers).
  static ShardResidency from_costs(const std::vector<sim::BlockCost>& costs,
                                   double shard_fraction);
};

/// Per-tier plan admission shared by the single-GPU and distributed plan
/// builders: rejects (karma::InfeasibleError) policy sets whose spill
/// overflows a bounded tier, counting `reserved_host` plus the
/// distributed pipeline's shard residency (pinned weight shards +
/// worst-case in-flight gradients) against DRAM, and returns the
/// hierarchy the plan should carry — host capacity reduced by the reserve
/// so the engine's ledger enforces it too (shard and gradient bytes stay
/// dynamic: the engine charges them per class at run time, and the static
/// worst case admitted here guarantees it never deadlocks). nullopt for
/// seed (two-level, unbounded-host) devices.
std::optional<tier::StorageHierarchy> admit_tiered_plan(
    const sim::DeviceSpec& device, const std::vector<sim::BlockCost>& costs,
    const std::vector<BlockPolicy>& policies, Bytes reserved_host,
    const ShardResidency& shards = {});

/// Blocks with an outgoing skip edge into a non-adjacent block (U-Net's
/// contracting path, Sec. III-F.4) must not be swapped out before their
/// consumer runs; returns the per-block mask.
std::vector<bool> blocks_with_long_skips(const graph::Model& model,
                                         const std::vector<sim::Block>& blocks);

/// Emits the single-GPU training plan for one iteration. `model` supplies
/// weights footprint (kept resident; must fit), `device` the capacity.
/// Throws karma::InfeasibleError when weights alone exceed the device.
/// `precomputed_costs`, when given, must be compute_block_cost for each
/// block in order (the planner passes its memoized costs so candidate
/// evaluation skips the analytic models); nullptr computes them here.
sim::Plan build_training_plan(const graph::Model& model,
                              const sim::DeviceSpec& device,
                              const std::vector<sim::Block>& blocks,
                              const std::vector<BlockPolicy>& policies,
                              const std::string& strategy,
                              const ScheduleOptions& options = {},
                              const std::vector<sim::BlockCost>*
                                  precomputed_costs = nullptr);

/// In-core baseline: everything resident, no swaps. Deadlocks in the
/// engine (by design) when the model does not fit.
sim::Plan build_incore_plan(const graph::Model& model,
                            const sim::DeviceSpec& device,
                            const std::vector<sim::Block>& blocks);

}  // namespace karma::core
