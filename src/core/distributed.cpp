#include "src/core/distributed.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/graph/memory_model.h"
#include "src/util/infeasible.h"

namespace karma::core {
namespace {

using sim::Block;
using sim::BlockCost;
using sim::Op;
using sim::OpKind;
using sim::Plan;

struct EmitContext {
  const std::vector<Block>& blocks;
  const std::vector<BlockCost>& costs;
  const std::vector<BlockPolicy>& policies;
  const sim::DeviceSpec& device;
  const DistributedOptions& options;
  const net::ExchangePlan& exchange;
  bool weights_resident;
};

/// Scaled weight/gradient swap payload per block (ZeRO stacking shrinks
/// the per-rank shard).
Bytes param_sw(const EmitContext& ctx, int b) {
  return static_cast<Bytes>(std::llround(
      static_cast<double>(ctx.costs[static_cast<std::size_t>(b)].param_bytes) *
      ctx.options.weight_shard_fraction));
}
Bytes grad_sw(const EmitContext& ctx, int b) {
  return static_cast<Bytes>(std::llround(
      static_cast<double>(ctx.costs[static_cast<std::size_t>(b)].grad_bytes) *
      ctx.options.weight_shard_fraction));
}

/// Emits one training iteration of the 5-stage pipeline into `plan`.
void emit_iteration(Plan& plan, const EmitContext& ctx, int iteration) {
  const int nb = static_cast<int>(ctx.blocks.size());
  const auto policy = [&](int b) {
    return ctx.policies[static_cast<std::size_t>(b)];
  };
  int stage =
      plan.stage_of.empty() ? 0 : plan.stage_of.back() + 1;
  const auto push = [&](Op op, int op_stage) {
    op.iteration = iteration;
    plan.ops.push_back(op);
    plan.stage_of.push_back(op_stage);
    return static_cast<int>(plan.ops.size()) - 1;
  };

  // ---- Forward phase ----
  std::vector<int> forward_index(static_cast<std::size_t>(nb), -1);
  for (int b = 0; b < nb; ++b) {
    ++stage;
    if (!ctx.weights_resident) {
      // Stream this block's weight shard in from the pinned host master
      // copy, bounded to two blocks of lookahead so parameters never pile
      // up on the device. Weight-shard reads leave the host ledger alone.
      Op win;
      win.kind = OpKind::kSwapIn;
      win.block = b;
      win.residency = tier::Residency::kWeightShard;
      win.bytes = param_sw(ctx, b);
      win.alloc = win.bytes;
      if (b >= 2) win.after_op = forward_index[static_cast<std::size_t>(b - 2)];
      push(win, stage);
    } else if (iteration > 0) {
      // Refresh the resident weights with the CPU-updated values (in
      // place; dep chain gates this on the block's CpuUpdate).
      Op win;
      win.kind = OpKind::kSwapIn;
      win.block = b;
      win.residency = tier::Residency::kWeightShard;
      win.bytes = param_sw(ctx, b);
      win.alloc = 0;
      push(win, stage);
    }
    Op fwd;
    fwd.kind = OpKind::kForward;
    fwd.block = b;
    fwd.retains = policy(b) != BlockPolicy::kRecompute;
    forward_index[static_cast<std::size_t>(b)] = push(fwd, stage);
    if (is_swap_policy(policy(b))) {
      Op out;
      out.kind = OpKind::kSwapOut;
      out.block = b;
      out.tier = swap_tier_of(policy(b));
      push(out, stage);
    }
    if (!ctx.weights_resident) {
      // Drop the (unmodified) weights: the host copy is authoritative, so
      // eviction is free — no PCIe traffic and no host ledger charge.
      Op drop;
      drop.kind = OpKind::kSwapOut;
      drop.block = b;
      drop.residency = tier::Residency::kWeightShard;
      drop.bytes = 0;
      drop.free = param_sw(ctx, b);
      drop.duration = 0.0;
      push(drop, stage);
    }
  }
  const int last_forward = forward_index[static_cast<std::size_t>(nb - 1)];

  // ---- Backward phase with prefetch windows ----
  std::vector<int> swapped;  // act-swap blocks (host and NVMe), descending
  for (int b = nb - 1; b >= 0; --b)
    if (is_swap_policy(policy(b))) swapped.push_back(b);
  std::size_t next_swap = 0;
  int last_backward = -1;

  const auto issue_act_swap_ins = [&](int gate, int count) {
    for (int k = 0; k < count && next_swap < swapped.size(); ++k) {
      Op in;
      in.kind = OpKind::kSwapIn;
      in.block = swapped[next_swap];
      in.tier = swap_tier_of(ctx.policies[static_cast<std::size_t>(
          swapped[next_swap])]);
      in.after_op = gate;
      push(in, stage);
      ++next_swap;
    }
  };
  issue_act_swap_ins(last_forward, ctx.options.planner.schedule.prefetch_window);

  // Exchange phases indexed by launch block.
  std::vector<const net::ExchangePhase*> phase_at(
      static_cast<std::size_t>(nb), nullptr);
  for (const auto& phase : ctx.exchange.phases)
    phase_at[static_cast<std::size_t>(phase.launch_after_block)] = &phase;

  for (int b = nb - 1; b >= 0; --b) {
    ++stage;
    if (!ctx.weights_resident) {
      // Weights (and a gradient buffer) return for the backward of this
      // block, gated on backward progress for liveness.
      Op win;
      win.kind = OpKind::kSwapIn;
      win.block = b;
      win.residency = tier::Residency::kWeightShard;
      win.bytes = param_sw(ctx, b);
      win.alloc = param_sw(ctx, b) + grad_sw(ctx, b);
      if (last_backward >= 0) win.after_op = last_backward;
      push(win, stage);
    }
    if (policy(b) == BlockPolicy::kRecompute) {
      while (next_swap < swapped.size() && swapped[next_swap] >= b - 1)
        issue_act_swap_ins(last_backward >= 0 ? last_backward : last_forward,
                           1);
      Op re;
      re.kind = OpKind::kRecompute;
      re.block = b;
      re.alloc = std::max<Bytes>(
          0, ctx.costs[static_cast<std::size_t>(b)].act_bytes -
                 ctx.costs[static_cast<std::size_t>(b)].boundary_bytes);
      push(re, stage);
    }
    Op bwd;
    bwd.kind = OpKind::kBackward;
    bwd.block = b;
    bwd.alloc = 0;
    bwd.free = ctx.costs[static_cast<std::size_t>(b)].act_bytes;
    last_backward = push(bwd, stage);
    issue_act_swap_ins(last_backward, 1);

    // Stage 3: gradients stream to the host (dropping the weight shard
    // too in the weight-swapping regime). The gradient bytes occupy host
    // DRAM until the block's update consumes them — a bounded, ledgered
    // lifetime, not an unbounded mirror.
    Op gout;
    gout.kind = OpKind::kSwapOut;
    gout.block = b;
    gout.residency = tier::Residency::kGradient;
    gout.bytes = grad_sw(ctx, b);
    gout.free = ctx.weights_resident ? 0 : param_sw(ctx, b) + grad_sw(ctx, b);
    const int gout_index = push(gout, stage);

    // Stage 4 + 5: phased exchange and weight update for every phase that
    // launches at this block.
    if (const net::ExchangePhase* phase =
            phase_at[static_cast<std::size_t>(b)]) {
      Op ar;
      ar.kind = OpKind::kAllReduce;
      ar.block = b;
      ar.duration = phase->allreduce_time;
      ar.after_op = gout_index;
      const int ar_index = push(ar, stage);
      for (int p : phase->blocks) {
        Op up;
        up.block = p;
        up.after_op = ar_index;
        // The update is the gradient's consumer: its bytes tell the
        // engine how much kGradient residency to return to the ledger.
        up.bytes = grad_sw(ctx, p);
        up.residency = tier::Residency::kGradient;
        if (ctx.options.update == UpdateSite::kCpu) {
          up.kind = OpKind::kCpuUpdate;
          up.duration = ctx.device.cpu_update_time(param_sw(ctx, p));
        } else {
          // Ablation: device-side update. The weights+grads must sit on
          // the GPU, occupying the compute stream; in the weight-swapping
          // regime this also forces an extra round trip, which is exactly
          // the "unacceptable performance penalty" of the trivial
          // workaround in Sec. III-G.
          up.kind = OpKind::kDeviceUpdate;
          const Bytes moved = 3 * param_sw(ctx, p);
          up.duration =
              static_cast<double>(moved) / ctx.device.device_mem_bw +
              (ctx.weights_resident
                   ? 0.0
                   : ctx.device.h2d_time(param_sw(ctx, p) + grad_sw(ctx, p)) +
                         ctx.device.d2h_time(param_sw(ctx, p)));
        }
        push(up, stage);
      }
    }
  }
}

}  // namespace

DistributedResult plan_data_parallel(
    const graph::Model& model, const sim::DeviceSpec& device,
    const DistributedOptions& options, const CancelToken& control,
    const std::function<void(const DistributedResult&)>& on_improved) {
  // Decide the weight regime.
  const graph::LayerMemory total = graph::range_memory(
      model, 0, static_cast<int>(model.num_layers()));
  const double frac = options.weight_shard_fraction;
  const Bytes weight_state = static_cast<Bytes>(
      std::llround(static_cast<double>(total.weights + total.weight_grads) *
                   frac));
  const bool weights_resident =
      weight_state < device.memory_capacity / 2;

  // ---- Blocking (Opt-1 for the distributed pipeline) ----
  std::optional<DistributedResult> best;

  const auto try_candidate = [&](const std::vector<Block>& blocks) {
    // Cooperative cancellation point, once per candidate blocking — the
    // same boundary discipline as KarmaPlanner (never mid-simulation).
    if (const StopReason reason = control.stop_reason();
        reason != StopReason::kNone)
      throw SearchInterrupted{reason};
    std::vector<BlockCost> costs;
    costs.reserve(blocks.size());
    for (const auto& blk : blocks)
      costs.push_back(sim::compute_block_cost(model, blk, device));

    // Activation budget: capacity minus resident weight state (resident
    // regime) or minus the in-flight weight shards (swapping regime).
    Bytes act_budget = device.memory_capacity;
    if (weights_resident) {
      act_budget -= weight_state;
    } else {
      Bytes max_wshard = 0;
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        const Bytes shard = static_cast<Bytes>(std::llround(
            static_cast<double>(costs[b].param_bytes + costs[b].grad_bytes) *
            frac));
        max_wshard = std::max(max_wshard, shard);
      }
      act_budget -= 4 * max_wshard;  // forward lookahead + backward pair
    }
    if (act_budget <= 0) return;

    // Host residency the pipeline itself pins or keeps in flight
    // (DESIGN.md §9): the master weight shards live in DRAM for the whole
    // run (the CPU update reads and writes them; the swapping regime
    // streams the device copy from them), and in the worst case every
    // block's gradient shard is simultaneously between its gradient-out
    // and its update. Both charge the host tier ahead of any activation
    // spill — this is what replaced the old "host tier stays unbounded"
    // carve-out.
    const ShardResidency shards = ShardResidency::from_costs(costs, frac);

    // Activation spills route tier-aware exactly like the single-GPU
    // planner: host DRAM first (pre-charged with the optimizer reserve
    // plus the shard residency above), overflow to NVMe. Seed devices
    // (unbounded host) reproduce the original two-tier policy set
    // bit-identically.
    const Bytes reserved_host = options.planner.schedule.reserved_host_bytes;
    std::vector<BlockPolicy> policies;
    try {
      policies = (device.host_capacity > 0 || device.has_nvme())
                     ? tiered_policies(blocks, costs, act_budget,
                                       sim::hierarchy_of(device),
                                       reserved_host + shards.total())
                     : capacity_based_policies(blocks, costs, act_budget);
    } catch (const InfeasibleError&) {
      return;  // spill fits no tier at this blocking
    }
    const auto long_skip = blocks_with_long_skips(model, blocks);
    for (std::size_t b = 0; b < blocks.size(); ++b)
      if (long_skip[b] && is_swap_policy(policies[b]))
        policies[b] = options.planner.enable_recompute
                          ? BlockPolicy::kRecompute
                          : BlockPolicy::kResident;

    // Opt-2 (constraint 10.1) variant: recompute the swapped blocks whose
    // rematerialization is cheaper than their swap-in. Both variants are
    // emitted and engine-ranked; the better one survives.
    std::vector<std::vector<BlockPolicy>> variants = {policies};
    if (options.planner.enable_recompute) {
      auto flipped = policies;
      bool any = false;
      for (std::size_t b = 0; b < blocks.size(); ++b) {
        if (!is_swap_policy(flipped[b])) continue;
        if (costs[b].fwd_time < device.read_from_tier_time(
                                    swap_tier_of(flipped[b]),
                                    costs[b].act_bytes)) {
          flipped[b] = BlockPolicy::kRecompute;
          any = true;
        }
      }
      if (any) variants.push_back(std::move(flipped));
    }

    // Gradient-exchange plan (stage 4).
    std::vector<Bytes> grad_bytes;
    std::vector<Seconds> bwd_time;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      grad_bytes.push_back(static_cast<Bytes>(std::llround(
          static_cast<double>(costs[b].grad_bytes) * frac)));
      bwd_time.push_back(costs[b].bwd_time);
    }
    net::ExchangePlan exchange;
    switch (options.exchange) {
      case ExchangeMode::kBulk:
        exchange = net::bulk_exchange(options.net, options.num_gpus, grad_bytes);
        break;
      case ExchangeMode::kPerBlock:
        exchange =
            net::per_block_exchange(options.net, options.num_gpus, grad_bytes);
        break;
      case ExchangeMode::kMerged:
        exchange = net::merged_exchange(options.net, options.num_gpus,
                                        grad_bytes, bwd_time);
        break;
    }

    for (const auto& variant : variants) {
      // Static per-tier admission: activation spills, the optimizer
      // reserve, the pinned weight shards, and the worst-case in-flight
      // gradients must all fit the bounded host tier together. The plan
      // carries the bounded hierarchy; the engine's per-class ledger
      // replays shard and gradient lifetimes dynamically against it
      // (gradient-out charges, the block's update releases), so
      // multi-iteration pipelines are admitted honestly instead of
      // through the old unbounded-host carve-out.
      std::optional<tier::StorageHierarchy> plan_hierarchy;
      try {
        plan_hierarchy =
            admit_tiered_plan(device, costs, variant,
                              options.planner.schedule.reserved_host_bytes,
                              shards);
      } catch (const InfeasibleError&) {
        continue;  // this policy set overflows a bounded tier
      }
      Plan plan;
      plan.strategy = weights_resident ? "karma-dp" : "karma-dp+weight-swap";
      plan.hierarchy = std::move(plan_hierarchy);
      plan.host_baseline_resident = shards.pinned_weight_bytes;
      plan.blocks = blocks;
      plan.costs = costs;
      plan.baseline_resident = weights_resident ? weight_state : 0;
      plan.capacity = weights_resident
                          ? device.memory_capacity - weight_state
                          : device.memory_capacity;
      const EmitContext ctx{blocks,  costs,    variant, device,
                            options, exchange, weights_resident};
      for (int it = 0; it < options.iterations; ++it)
        emit_iteration(plan, ctx, it);

      try {
        const sim::Engine engine(device);
        DistributedResult result;
        result.trace = engine.run(plan);
        // Steady-state iteration time: span between the completion of the
        // last op of consecutive iterations.
        std::vector<Seconds> iter_end(
            static_cast<std::size_t>(options.iterations), 0.0);
        for (const auto& r : result.trace.records)
          iter_end[static_cast<std::size_t>(r.iteration)] =
              std::max(iter_end[static_cast<std::size_t>(r.iteration)], r.end);
        result.first_iteration_time = iter_end.front();
        result.iteration_time =
            options.iterations > 1
                ? iter_end[static_cast<std::size_t>(options.iterations - 1)] -
                      iter_end[static_cast<std::size_t>(options.iterations - 2)]
                : iter_end.front();
        result.plan = std::move(plan);
        result.exchange = exchange;
        result.weights_resident = weights_resident;
        result.blocks = blocks;
        result.policies = variant;
        control.count_candidate(/*simulated=*/true);
        if (!best || result.iteration_time < best->iteration_time) {
          best = std::move(result);
          // Snapshot first, progress flag second — as in KarmaPlanner.
          if (on_improved) on_improved(*best);
          control.report_best(best->iteration_time);
        }
      } catch (const InfeasibleError&) {
        // infeasible candidate (engine deadlock); anything else — a plan
        // that fails validation, bad_alloc — is a bug and propagates
        control.count_candidate(/*simulated=*/true);
      }
    }
  };

  // Candidate blockings over clean cut points.
  const auto cuts = candidate_cut_points(model);
  const int max_k = std::min<int>(options.planner.max_blocks,
                                  static_cast<int>(cuts.size()) - 1);
  for (int k = std::max(2, options.planner.min_blocks); k <= max_k;
       k = k < 8 ? k + 1 : k + k / 2) {
    std::vector<int> boundary;
    const auto n = cuts.size();
    for (int j = 0; j <= k; ++j)
      boundary.push_back(cuts[std::min(
          n - 1, static_cast<std::size_t>(j) * (n - 1) /
                     static_cast<std::size_t>(k))]);
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    if (boundary.size() < 2) continue;
    std::vector<Block> blocks;
    for (std::size_t i = 0; i + 1 < boundary.size(); ++i)
      blocks.push_back({boundary[i], boundary[i + 1]});
    try_candidate(blocks);
  }

  if (!best)
    throw std::runtime_error("plan_data_parallel: no feasible plan for '" +
                             model.name() + "' on " + device.name);
  return std::move(*best);
}

}  // namespace karma::core
