#include "src/place/fleet.h"

#include <set>
#include <stdexcept>

namespace karma::place {

const char* placement_strategy_name(PlacementStrategy strategy) {
  switch (strategy) {
    case PlacementStrategy::kCostBased: return "cost-based";
    case PlacementStrategy::kRoundRobin: return "round-robin";
  }
  return "?";
}

PlacementStrategy placement_strategy_from(const std::string& name) {
  if (name == "cost-based") return PlacementStrategy::kCostBased;
  if (name == "round-robin") return PlacementStrategy::kRoundRobin;
  throw std::runtime_error("unknown placement strategy '" + name + "'");
}

std::string validate_fleet(const FleetSpec& fleet) {
  if (fleet.num_nodes() < 2)
    return "fleet needs >= 2 nodes (single-node requests plan without a "
           "fleet)";
  std::set<std::string> names;
  for (const FleetNode& node : fleet.nodes) {
    if (node.name.empty()) return "fleet node has an empty name";
    if (!names.insert(node.name).second)
      return "duplicate fleet node name '" + node.name + "'";
    if (node.device.memory_capacity <= 0)
      return "fleet node '" + node.name + "' device has no memory capacity";
  }
  return {};
}

FleetSpec mixed_generation_fleet(int strong, int weak,
                                 Bytes weak_host_capacity) {
  FleetSpec fleet;
  for (int i = 0; i < strong; ++i)
    fleet.nodes.push_back(
        {"a100-" + std::to_string(i), sim::a100_fleet_node()});
  for (int i = 0; i < weak; ++i) {
    sim::DeviceSpec d = sim::v100_abci_nvme();
    d.host_capacity = weak_host_capacity;
    // The weak nodes' SSD is shared (checkpoint writer, co-tenants):
    // sustained bandwidth derates behind a queue of 4 competing IOs and
    // mixed-direction traffic stalls reads harder than writes.
    d.nvme_contention.queue_depth = 4.0;
    d.nvme_contention.mixed_read_penalty = 1.6;
    d.nvme_contention.mixed_write_penalty = 1.25;
    fleet.nodes.push_back({"v100-" + std::to_string(i), std::move(d)});
  }
  return fleet;
}

}  // namespace karma::place
