// Cost-based shard placement onto a heterogeneous fleet (DESIGN.md §16).
//
// In synchronous data parallelism every rank computes the WHOLE model on
// its local batch; what placement assigns is weight-shard OWNERSHIP — who
// keeps the pinned master copy + optimizer state in host DRAM and runs
// the CPU update for each block of layers. Ownership is what differs
// between heterogeneous nodes: a node with scarce DRAM pays for owned
// bytes by pushing its activation spill down to (possibly contended)
// NVMe, and a node with a slow host pays a longer update tail.
//
// The algorithm follows the sdpb Block_Cost / compute_block_grid_mapping
// pattern: per-block costs are simulated on every device class, blocks
// are sorted by descending ownership cost, and each is greedily assigned
// to the admissible node with the lowest projected finish time, admitted
// against the node's per-tier ledger. Deterministic by construction —
// every tie breaks on the smaller index.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/place/fleet.h"
#include "src/sim/plan.h"
#include "src/tier/hierarchy.h"

namespace karma::place {

/// Per-tier shortfall on the binding node, mirroring api::TierDeficit
/// (place sits below the api layer, so it carries its own copy).
struct FleetDeficit {
  tier::Tier tier = tier::Tier::kHost;
  Bytes required = 0;
  Bytes capacity = 0;
};

/// Structured fleet infeasibility: names the binding node and quantifies
/// its per-tier shortfalls. Derives from std::runtime_error — the
/// planners' documented infeasibility channel — so generic handlers (the
/// feasible-batch bisection probes) treat it like any other infeasible
/// candidate, while api::Engine catches it first and surfaces the node
/// name + deficits as a structured PlanError.
class FleetInfeasible : public std::runtime_error {
 public:
  FleetInfeasible(std::string node_name, std::vector<FleetDeficit> shortfalls,
                  const std::string& message)
      : std::runtime_error(message),
        node(std::move(node_name)),
        deficits(std::move(shortfalls)) {}

  std::string node;  ///< the binding fleet node
  std::vector<FleetDeficit> deficits;
};

/// Knobs of the placement itself (the planner knobs ride separately in
/// FleetPlanOptions).
struct PlacementOptions {
  /// Host bytes pre-charged on EVERY node before ownership is assigned
  /// (the request-level planner.schedule.reserved_host_bytes).
  Bytes base_reserved_host = 0;
  /// Host-pinned optimizer state for `param_bytes` of owned parameters
  /// (api::OptimizerSpec::host_state_bytes, passed as a pure function so
  /// place does not depend on the api layer). Null = no optimizer state.
  std::function<Bytes(Bytes)> optimizer_state_bytes;
  /// Ownership granularity: the placement blocking targets this many
  /// blocks (clamped to the model's clean-cut density and never below
  /// the fleet size when the cuts allow it).
  int target_blocks = 16;
};

/// Per-node roll-up of a placement, filled in two passes: byte ownership
/// at placement time, the time fields once plan_fleet has searched the
/// node's schedule and composed the exchange.
struct NodeSummary {
  std::string name;
  std::string device_name;
  int owned_blocks = 0;
  Bytes owned_param_bytes = 0;
  Bytes owned_grad_bytes = 0;
  /// Host DRAM pre-charged into this node's planning search: the base
  /// reserve + optimizer state of owned params + pinned owned shards.
  Bytes reserved_host_bytes = 0;
  Seconds plan_iteration_time = 0.0;  ///< node's own planned makespan
  Seconds exchange_tail = 0.0;        ///< exposed (non-overlapped) AllReduce
  Seconds update_time = 0.0;          ///< CPU update of owned shards
  Seconds total_time = 0.0;           ///< the straggler metric
  bool warm_started = false;          ///< search seeded via plan_from
};

/// The deterministic block -> node assignment, plus the per-node roll-up
/// and the straggler composition. Serialized (versioned) by
/// api::placement_to_json and embedded in fleet plan artifacts.
struct PlacementPlan {
  PlacementStrategy strategy = PlacementStrategy::kCostBased;
  std::vector<sim::Block> blocks;  ///< ownership granularity
  std::vector<int> owner;          ///< owner[b] = fleet node index
  std::vector<NodeSummary> nodes;  ///< parallel to FleetSpec::nodes
  int straggler = -1;              ///< argmax total_time (set by plan_fleet)
  Seconds iteration_time = 0.0;    ///< fleet steady-state = max total_time
};

/// Ownership blocking: a balanced partition of the model over its
/// candidate cut points, equalizing activation bytes per block. Targets
/// `target_blocks` blocks, clamped to the available cuts.
std::vector<sim::Block> placement_blocks(const graph::Model& model,
                                         int target_blocks);

/// Assigns each block's weight-shard ownership to a fleet node per the
/// fleet's strategy, admitting each assignment against the node's host
/// tier ledger (base reserve + optimizer state + pinned shard masters +
/// worst-case in-flight gradients). Fills strategy/blocks/owner and the
/// per-node byte ownership; the time fields stay zero until plan_fleet.
/// Throws FleetInfeasible (naming the binding node) when no admissible
/// node exists for a block.
PlacementPlan place_blocks(const graph::Model& model, const FleetSpec& fleet,
                           const std::vector<sim::Block>& blocks,
                           const PlacementOptions& options);

}  // namespace karma::place
