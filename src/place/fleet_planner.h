// Per-node planning over a heterogeneous fleet (DESIGN.md §16).
//
// Symmetric data parallelism plans ONE rank and multiplies; a fleet
// breaks that, so plan_fleet runs a full blocking/policy search per
// heterogeneous node — each with the host reserve its shard ownership
// implies — and composes the synchronous iteration time as the max over
// nodes of (planned makespan + exposed exchange tail + CPU update of
// owned shards). The binding node is reported as the straggler; making it
// faster is the placement layer's objective.
#pragma once

#include <vector>

#include "src/core/planner.h"
#include "src/net/phased_exchange.h"
#include "src/place/placement.h"
#include "src/util/cancel.h"

namespace karma::place {

struct FleetPlanOptions {
  /// Per-node search knobs. schedule.reserved_host_bytes is the BASE
  /// reserve replicated on every node (placement adds each node's owned
  /// shard + optimizer bytes on top — see PlacementOptions).
  core::PlannerOptions planner;
  PlacementOptions placement;
};

/// One node's search outcome plus its leg of the straggler composition.
struct NodePlanResult {
  core::PlanResult result;
  net::ExchangePlan exchange;
  Seconds exchange_tail = 0.0;  ///< exposed (post-backward) AllReduce time
  Seconds update_time = 0.0;    ///< CPU update of this node's owned shards
  Seconds total_time = 0.0;     ///< iteration_time + tails
};

struct FleetPlanResult {
  PlacementPlan placement;            ///< owner map + per-node roll-up
  std::vector<NodePlanResult> nodes;  ///< parallel to FleetSpec::nodes
  int straggler = 0;                  ///< argmax total_time (ties: lowest)
  Seconds iteration_time = 0.0;       ///< fleet steady state = max total
};

/// Places shard ownership (place_blocks), searches a schedule per node —
/// deduped by (device class, host reserve) and warm-started from the
/// nearest already-planned class — then composes the straggler time.
/// Throws FleetInfeasible naming the binding node when placement cannot
/// admit a block or a node's own search finds no feasible blocking;
/// rethrows core::SearchInterrupted untouched when `control` fires.
FleetPlanResult plan_fleet(const graph::Model& model, const FleetSpec& fleet,
                           const FleetPlanOptions& options,
                           const CancelToken& control = {});

}  // namespace karma::place
