#include "src/place/placement.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <numeric>

#include "src/core/planner.h"
#include "src/graph/memory_model.h"
#include "src/sim/device.h"
#include "src/tier/accountant.h"

namespace karma::place {

namespace {

/// Simulated per-block costs on one device class. Ranks of the same
/// generation share a table — compute_block_cost is pure in the device,
/// so one simulation per class covers every node of that class.
struct DeviceClass {
  const sim::DeviceSpec* device = nullptr;
  std::vector<sim::BlockCost> costs;
  /// Sum of fwd+bwd over ALL blocks: what this class spends computing the
  /// whole model regardless of ownership. Slower generations start the
  /// greedy packing more loaded and therefore attract fewer shards.
  Seconds pipe_time = 0.0;
};

/// Bandwidth a host byte displaced by shard ownership re-stages through:
/// the contended NVMe legs when the node has a storage tier (activation
/// spill overflows DRAM down to NVMe), else the PCIe link back to the
/// device. The queue-depth derate mirrors DeviceSpec::nvme_read_time.
double displace_bw(const sim::DeviceSpec& d) {
  if (d.has_nvme()) {
    const double derate = 1.0 + d.nvme_contention.queue_depth;
    return std::min(d.nvme_read_bw, d.nvme_write_bw) / derate;
  }
  return std::min(d.h2d_bw, d.d2h_bw);
}

}  // namespace

std::vector<sim::Block> placement_blocks(const graph::Model& model,
                                         int target_blocks) {
  const std::vector<int> cuts = core::candidate_cut_points(model);
  const int num_layers = static_cast<int>(model.num_layers());

  // Per-layer retained-activation prefix sums: the balance metric. Bytes
  // are shape-derived, so no device is needed here.
  std::vector<double> prefix(static_cast<std::size_t>(num_layers) + 1, 0.0);
  for (int i = 0; i < num_layers; ++i) {
    const graph::LayerMemory mem =
        graph::layer_memory(model.layer(i), model.dtype_bytes(), {},
                            model.activation_memory_scale());
    prefix[i + 1] = prefix[i] + static_cast<double>(mem.activations);
  }

  const int max_blocks = static_cast<int>(cuts.size()) - 1;
  const int k = std::max(1, std::min(target_blocks, max_blocks));

  // Walk the ideal equal-activation thresholds, snapping each to the
  // nearest still-available cut while leaving enough cuts for the
  // remaining boundaries. Earliest cut wins ties -> deterministic.
  std::vector<int> bounds;
  bounds.reserve(static_cast<std::size_t>(k) + 1);
  bounds.push_back(0);
  std::size_t next = 1;
  for (int j = 1; j < k; ++j) {
    const double ideal = prefix[num_layers] * static_cast<double>(j) / k;
    const std::size_t last_ok =
        cuts.size() - 1 - static_cast<std::size_t>(k - j);
    std::size_t best = next;
    for (std::size_t c = next; c <= last_ok; ++c) {
      if (std::abs(prefix[cuts[c]] - ideal) <
          std::abs(prefix[cuts[best]] - ideal))
        best = c;
    }
    bounds.push_back(cuts[best]);
    next = best + 1;
  }
  bounds.push_back(num_layers);

  std::vector<sim::Block> blocks;
  blocks.reserve(bounds.size() - 1);
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i)
    blocks.push_back({bounds[i], bounds[i + 1]});
  return blocks;
}

PlacementPlan place_blocks(const graph::Model& model, const FleetSpec& fleet,
                           const std::vector<sim::Block>& blocks,
                           const PlacementOptions& options) {
  const int num_blocks = static_cast<int>(blocks.size());
  const int num_nodes = fleet.num_nodes();

  PlacementPlan plan;
  plan.strategy = fleet.strategy;
  plan.blocks = blocks;
  plan.owner.assign(static_cast<std::size_t>(num_blocks), -1);

  // --- per-class simulated block costs (the sdpb Block_Cost table) ---
  std::vector<int> class_of(static_cast<std::size_t>(num_nodes), 0);
  std::vector<DeviceClass> classes;
  std::map<std::string, int> class_ids;
  for (int n = 0; n < num_nodes; ++n) {
    const sim::DeviceSpec& device = fleet.nodes[n].device;
    auto [it, fresh] =
        class_ids.emplace(device.name, static_cast<int>(classes.size()));
    if (fresh) {
      DeviceClass cls;
      cls.device = &device;
      cls.costs.reserve(blocks.size());
      for (const sim::Block& b : blocks)
        cls.costs.push_back(sim::compute_block_cost(model, b, device));
      for (const sim::BlockCost& c : cls.costs)
        cls.pipe_time += c.fwd_time + c.bwd_time;
      classes.push_back(std::move(cls));
    }
    class_of[n] = it->second;
  }

  const auto opt_state = [&](Bytes param_bytes) -> Bytes {
    return options.optimizer_state_bytes
               ? options.optimizer_state_bytes(param_bytes)
               : 0;
  };

  // Byte fields of BlockCost are shape-derived (device-independent), so
  // any class' table serves as THE byte table.
  const std::vector<sim::BlockCost>& bytes_of = classes.front().costs;

  // Host-DRAM charge of owning block b: the pinned master shard, the
  // worst-case in-flight gradients awaiting the CPU update, and the
  // optimizer state (core::ShardResidency at fraction 1, owned extent).
  const auto charge_of = [&](int b) -> Bytes {
    const sim::BlockCost& c = bytes_of[static_cast<std::size_t>(b)];
    return c.param_bytes + c.grad_bytes + opt_state(c.param_bytes);
  };

  // Ownership cost of b on a node: the CPU update tail plus displacement
  // pressure — owned bytes crowd activations out of DRAM, and the evicted
  // bytes re-stage through the next tier down. The pressure term scales
  // with how full the node's DRAM would be, so ample-DRAM nodes own
  // almost for free while scarce ones pay contended-NVMe prices.
  const auto own_cost = [&](int b, const sim::DeviceSpec& d,
                            Bytes reserved) -> Seconds {
    const Bytes charge = charge_of(b);
    Seconds cost =
        d.cpu_update_time(bytes_of[static_cast<std::size_t>(b)].param_bytes);
    if (d.host_capacity > 0) {
      const double scarcity =
          std::min(1.0, static_cast<double>(reserved + charge) /
                            static_cast<double>(d.host_capacity));
      cost += scarcity * static_cast<double>(charge) / displace_bw(d);
    }
    return cost;
  };

  // Per-node ledgers: admission is real tier accounting, not a heuristic.
  std::vector<tier::TierAccountant> ledgers;
  ledgers.reserve(static_cast<std::size_t>(num_nodes));
  std::vector<Bytes> reserved(static_cast<std::size_t>(num_nodes), 0);
  std::vector<Seconds> load(static_cast<std::size_t>(num_nodes), 0.0);
  for (int n = 0; n < num_nodes; ++n) {
    const FleetNode& node = fleet.nodes[n];
    ledgers.emplace_back(sim::hierarchy_of(node.device));
    load[n] = classes[class_of[n]].pipe_time;
    if (options.base_reserved_host > 0) {
      if (!ledgers[n].fits(tier::Tier::kHost, options.base_reserved_host))
        throw FleetInfeasible(
            node.name,
            {{tier::Tier::kHost, options.base_reserved_host,
              node.device.host_capacity}},
            "fleet node '" + node.name + "': base host reserve (" +
                std::to_string(options.base_reserved_host) +
                " B) alone exceeds host DRAM");
      ledgers[n].charge(tier::Tier::kHost, tier::Residency::kOptimizerState,
                        options.base_reserved_host);
      reserved[n] = options.base_reserved_host;
    }
  }

  const auto admit = [&](int b, int n) -> bool {
    const sim::BlockCost& c = bytes_of[static_cast<std::size_t>(b)];
    if (!ledgers[n].fits(tier::Tier::kHost, charge_of(b))) return false;
    ledgers[n].charge(tier::Tier::kHost, tier::Residency::kWeightShard,
                      c.param_bytes + c.grad_bytes);
    ledgers[n].charge(tier::Tier::kHost, tier::Residency::kOptimizerState,
                      opt_state(c.param_bytes));
    reserved[n] += charge_of(b);
    return true;
  };

  // Names the node closest to fitting (smallest deficit) when nothing
  // admits a block: that is the binding constraint the caller should act
  // on (add DRAM there, or shrink the batch).
  const auto infeasible = [&](int b) -> FleetInfeasible {
    const Bytes charge = charge_of(b);
    int best = 0;
    Bytes best_deficit = -1;
    for (int n = 0; n < num_nodes; ++n) {
      const Bytes deficit =
          charge - ledgers[n].free_bytes(tier::Tier::kHost);
      if (best_deficit < 0 || deficit < best_deficit) {
        best = n;
        best_deficit = deficit;
      }
    }
    const FleetNode& node = fleet.nodes[best];
    return FleetInfeasible(
        node.name,
        {{tier::Tier::kHost, ledgers[best].used(tier::Tier::kHost) + charge,
          node.device.host_capacity}},
        "fleet placement infeasible: block " + std::to_string(b) +
            " (ownership charge " + std::to_string(charge) +
            " B) fits no node's host DRAM; nearest is '" + node.name +
            "' short " + std::to_string(best_deficit) + " B");
  };

  if (fleet.strategy == PlacementStrategy::kRoundRobin) {
    for (int b = 0; b < num_blocks; ++b) {
      const int n = b % num_nodes;
      if (!admit(b, n)) throw infeasible(b);
      plan.owner[b] = n;
    }
  } else {
    // Greedy cost-sorted packing: hardest blocks first (their worst-class
    // ownership cost, at full displacement pressure), each assigned to
    // the admissible node minimizing projected finish time. Strict `<`
    // comparisons keep every tie on the smaller index -> deterministic.
    std::vector<double> sort_cost(static_cast<std::size_t>(num_blocks), 0.0);
    for (int b = 0; b < num_blocks; ++b) {
      for (const DeviceClass& cls : classes) {
        const sim::DeviceSpec& d = *cls.device;
        Seconds cost = d.cpu_update_time(
            bytes_of[static_cast<std::size_t>(b)].param_bytes);
        if (d.host_capacity > 0)
          cost += static_cast<double>(charge_of(b)) / displace_bw(d);
        sort_cost[b] = std::max(sort_cost[b], cost);
      }
    }
    std::vector<int> order(static_cast<std::size_t>(num_blocks));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return sort_cost[a] > sort_cost[b];
    });

    for (const int b : order) {
      int best = -1;
      Seconds best_finish = 0.0;
      for (int n = 0; n < num_nodes; ++n) {
        if (!ledgers[n].fits(tier::Tier::kHost, charge_of(b))) continue;
        const Seconds finish =
            load[n] + own_cost(b, fleet.nodes[n].device, reserved[n]);
        if (best < 0 || finish < best_finish) {
          best = n;
          best_finish = finish;
        }
      }
      if (best < 0) throw infeasible(b);
      load[best] += own_cost(b, fleet.nodes[best].device, reserved[best]);
      admit(b, best);
      plan.owner[b] = best;
    }
  }

  // Per-node byte roll-up. The authoritative reserve recomputes optimizer
  // state over each node's TOTAL owned params (host_state_bytes need not
  // be additive across blocks).
  plan.nodes.resize(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    plan.nodes[n].name = fleet.nodes[n].name;
    plan.nodes[n].device_name = fleet.nodes[n].device.name;
  }
  for (int b = 0; b < num_blocks; ++b) {
    NodeSummary& node = plan.nodes[static_cast<std::size_t>(plan.owner[b])];
    const sim::BlockCost& c = bytes_of[static_cast<std::size_t>(b)];
    node.owned_blocks += 1;
    node.owned_param_bytes += c.param_bytes;
    node.owned_grad_bytes += c.grad_bytes;
  }
  for (NodeSummary& node : plan.nodes)
    node.reserved_host_bytes = options.base_reserved_host +
                               node.owned_param_bytes +
                               node.owned_grad_bytes +
                               opt_state(node.owned_param_bytes);
  return plan;
}

}  // namespace karma::place
