#include "src/place/fleet_planner.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <utility>

namespace karma::place {

namespace {

/// Search identity of a node: nodes of the same device class with the
/// same host reserve would run the exact same deterministic search, so
/// they share one PlanResult.
using SearchKey = std::pair<std::string, Bytes>;

}  // namespace

FleetPlanResult plan_fleet(const graph::Model& model, const FleetSpec& fleet,
                           const FleetPlanOptions& options,
                           const CancelToken& control) {
  const std::string why = validate_fleet(fleet);
  if (!why.empty()) throw std::runtime_error("plan_fleet: " + why);

  const int num_nodes = fleet.num_nodes();

  FleetPlanResult out;
  out.placement = place_blocks(
      model, fleet,
      placement_blocks(model,
                       std::max(options.placement.target_blocks, num_nodes)),
      options.placement);
  out.nodes.resize(static_cast<std::size_t>(num_nodes));

  // --- per-node schedule searches, deduped and warm-started ---
  std::map<SearchKey, int> searched;  // key -> node whose result to share
  for (int n = 0; n < num_nodes; ++n) {
    const FleetNode& node = fleet.nodes[n];
    NodeSummary& summary = out.placement.nodes[static_cast<std::size_t>(n)];
    const SearchKey key{node.device.name, summary.reserved_host_bytes};
    const auto hit = searched.find(key);
    if (hit != searched.end()) {
      out.nodes[n].result = out.nodes[hit->second].result;
      summary.warm_started =
          out.placement.nodes[static_cast<std::size_t>(hit->second)]
              .warm_started;
      continue;
    }

    core::PlannerOptions planner_options = options.planner;
    planner_options.schedule.reserved_host_bytes =
        summary.reserved_host_bytes;
    core::KarmaPlanner planner(model, node.device, planner_options);

    // Warm start from the nearest already-searched device class (by HBM
    // capacity, then insertion order): heterogeneous generations mostly
    // agree on blocking, so the neighbour's incumbent seeds the anneal.
    int seed_node = -1;
    Bytes seed_distance = 0;
    for (const auto& [seen_key, seen_node] : searched) {
      const Bytes distance = std::llabs(
          fleet.nodes[seen_node].device.memory_capacity -
          node.device.memory_capacity);
      if (seed_node < 0 || distance < seed_distance) {
        seed_node = seen_node;
        seed_distance = distance;
      }
    }

    try {
      if (seed_node >= 0) {
        const core::PlanResult& seed = out.nodes[seed_node].result;
        out.nodes[n].result =
            planner.plan_from(seed.blocks, seed.policies, control);
      } else {
        out.nodes[n].result = planner.plan(control);
      }
    } catch (const FleetInfeasible&) {
      throw;  // already names its node
    } catch (const std::runtime_error& ex) {
      // A node whose own search finds no feasible blocking is a fleet
      // infeasibility binding on that node (SearchInterrupted is not a
      // std::exception and tunnels through untouched).
      throw FleetInfeasible(node.name, {},
                            "fleet node '" + node.name +
                                "': " + std::string(ex.what()));
    }
    summary.warm_started = out.nodes[n].result.search.warm_started;
    searched.emplace(key, n);
  }

  // --- straggler composition ---
  // Every rank exchanges the WHOLE model's gradients (synchronous data
  // parallelism); what differs per node is how much of the AllReduce its
  // backward hides and how long its owned-shard CPU update runs.
  for (int n = 0; n < num_nodes; ++n) {
    NodePlanResult& leg = out.nodes[n];
    NodeSummary& summary = out.placement.nodes[static_cast<std::size_t>(n)];
    const core::PlanResult& result = leg.result;

    std::vector<Bytes> grad_bytes;
    std::vector<Seconds> bwd_times;
    grad_bytes.reserve(result.plan.costs.size());
    bwd_times.reserve(result.plan.costs.size());
    for (const sim::BlockCost& cost : result.plan.costs) {
      grad_bytes.push_back(cost.grad_bytes);
      bwd_times.push_back(cost.bwd_time);
    }
    leg.exchange =
        net::merged_exchange(fleet.net, num_nodes, grad_bytes, bwd_times);
    leg.exchange_tail = leg.exchange.phases.empty()
                            ? 0.0
                            : leg.exchange.phases.back().allreduce_time;
    leg.update_time =
        fleet.nodes[n].device.cpu_update_time(summary.owned_param_bytes);
    leg.total_time =
        result.iteration_time + leg.exchange_tail + leg.update_time;

    summary.plan_iteration_time = result.iteration_time;
    summary.exchange_tail = leg.exchange_tail;
    summary.update_time = leg.update_time;
    summary.total_time = leg.total_time;

    if (n == 0 || leg.total_time > out.iteration_time) {
      out.iteration_time = leg.total_time;
      out.straggler = n;
    }
  }
  out.placement.straggler = out.straggler;
  out.placement.iteration_time = out.iteration_time;
  return out;
}

}  // namespace karma::place
