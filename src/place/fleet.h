// karma::place — heterogeneous fleet modeling (DESIGN.md §16).
//
// The paper simulates ONE rank and multiplies, because "all ranks are
// symmetric in synchronous data parallelism" (src/core/distributed.h).
// Real fleets are not symmetric: they mix GPU generations and have uneven
// host DRAM and NVMe per node, so synchronous iteration time is set by
// the worst-placed straggler, not the average rank. A FleetSpec names
// each rank and gives it its own full sim::DeviceSpec — compute,
// interconnect, tier capacities, calibration overlay, and NVMe contention
// model — and the placement layer (placement.h) decides which weight
// shards each node OWNS so the straggler is as fast as possible.
#pragma once

#include <string>
#include <vector>

#include "src/net/collective.h"
#include "src/sim/device.h"

namespace karma::place {

/// How blocks/weight-shards are assigned to fleet nodes.
enum class PlacementStrategy {
  /// Greedy cost-sorted packing (the sdpb Block_Cost /
  /// compute_block_grid_mapping pattern): blocks sorted by descending
  /// ownership cost, each assigned to the admissible node with the lowest
  /// projected finish time. The default.
  kCostBased,
  /// Naive round-robin by block index — the baseline cost-based placement
  /// is benchmarked against (bench/fig_placement.cpp).
  kRoundRobin,
};

const char* placement_strategy_name(PlacementStrategy strategy);
/// Inverse of placement_strategy_name; throws std::runtime_error on an
/// unknown name (the serialization error channel).
PlacementStrategy placement_strategy_from(const std::string& name);

/// One named rank of the fleet. The DeviceSpec carries everything that
/// differs between generations: FLOPS, HBM, host link, DRAM / NVMe tier
/// capacities and bandwidths, and the NVMe contention model.
struct FleetNode {
  std::string name;
  sim::DeviceSpec device;
};

/// A heterogeneous fleet: the named nodes plus the interconnect they
/// exchange gradients over. Serialized (versioned, deterministic) by
/// api::fleet_to_json / fleet_from_json and fingerprinted into the
/// request cache key, so any fleet change re-keys cached plans.
struct FleetSpec {
  std::vector<FleetNode> nodes;
  /// Gradient-exchange topology (defaults are the ABCI Table II numbers).
  net::NetSpec net;
  PlacementStrategy strategy = PlacementStrategy::kCostBased;

  int num_nodes() const { return static_cast<int>(nodes.size()); }
};

/// Structural validation: >= 2 nodes, non-empty unique names, every node
/// device has memory capacity. Returns an empty string when valid, else a
/// human-readable reason (api::Engine maps it to kInvalidRequest).
std::string validate_fleet(const FleetSpec& fleet);

/// Preset mixed-generation fleet for benches and tests:
/// `strong` A100-class nodes (a100_fleet_node: ample DRAM, fast gen4
/// NVMe) alongside `weak` V100-class nodes whose host DRAM is cut to
/// `weak_host_capacity` and whose shared NVMe runs contended
/// (queue_depth 4, mixed-load read/write penalties) — the configuration
/// where shard ownership placement decides the straggler.
FleetSpec mixed_generation_fleet(int strong, int weak,
                                 Bytes weak_host_capacity);

}  // namespace karma::place
