// Small statistics helpers used by traces and benchmark summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace karma {

/// Online accumulator for mean / min / max / variance (Welford).
class RunningStats {
 public:
  void add(double x);
  /// Folds `other` into this accumulator (parallel Welford / Chan et al.
  /// combine): the result is the accumulator of the concatenated sample
  /// streams, up to floating-point rounding. Used to reduce per-shard
  /// accumulators (obs::Histogram) without replaying samples.
  void merge(const RunningStats& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Geometric mean of a non-empty vector of positive values.
double geometric_mean(const std::vector<double>& values);

/// p-th percentile (0..100) by linear interpolation on a copy of `values`.
double percentile(std::vector<double> values, double p);

}  // namespace karma
