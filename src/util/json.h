// Minimal deterministic JSON machinery, shared by every serialization
// layer in the repo (plan artifacts, request artifacts, the karma-pland
// wire protocol).
//
// Extracted from api/plan_io.cpp when the daemon grew a second and third
// consumer: one writer, one parser, one set of number-formatting rules —
// so a plan embedded in a wire envelope is byte-identical to the same
// plan written standalone, and the cache-key guarantees built on that
// byte-stability carry over to every schema.
//
//   Writer — append-only builder emitting keys in a fixed order. No
//            generic DOM on the write path: determinism falls out of the
//            code structure. Doubles print %.17g (bit-exact round-trip);
//            infinities as overflowing decimals ("1e999") since JSON has
//            no literal for them; NaN is rejected.
//   Value/Parser — a small recursive-descent parser into a DOM that keeps
//            both integer and double views of numbers, so Bytes fields
//            round-trip without float truncation. Parses from a
//            string_view: mmap'd cache entries parse in place, no copy.
//
// No third-party dependency, by design (the container bakes none in).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace karma::util::json {

/// Append-only deterministic writer. Key order is the caller's call
/// order; equal inputs produce byte-identical output.
class Writer {
 public:
  std::string take() { return std::move(out_); }

  void begin_object() { punct('{'); }
  void end_object() { close('}'); }
  void begin_array() { punct('['); }
  void end_array() { close(']'); }

  void key(const char* k) {
    comma();
    string(k);
    out_ += ':';
    fresh_ = true;  // the value that follows must not emit a comma
  }

  void value(std::string_view s) { comma(); string(s); }
  void value(const char* s) { comma(); string(s); }
  void value(bool b) { comma(); out_ += b ? "true" : "false"; }
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(double d);
  void null() { comma(); out_ += "null"; }

  /// Splices pre-serialized JSON in as a value, verbatim. Lets an
  /// envelope embed an already-byte-stable artifact (e.g. a plan inside a
  /// wire response) without reparse/rewrite drift. The caller guarantees
  /// `json` is one well-formed JSON value.
  void raw(const std::string& json) {
    comma();
    out_ += json;
  }

 private:
  void string(std::string_view s);
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  void punct(char c) {
    comma();
    out_ += c;
    fresh_ = true;
  }
  void close(char c) {
    out_ += c;
    fresh_ = false;
  }

  std::string out_;
  bool fresh_ = true;
};

/// Parsed JSON DOM node. Numbers keep both views so integer fields
/// round-trip exactly; accessors throw std::runtime_error on type
/// mismatch (the uniform "corrupt input" channel every reader maps to
/// its own structured error).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::int64_t integer = 0;
  bool integral = false;  ///< number was written without '.'/'e'
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;
  /// Source span: [begin, end) offsets of this value's text in the parsed
  /// input. Lets an envelope consumer recover a nested artifact's EXACT
  /// original bytes (e.g. a plan embedded in a wire response) and reparse
  /// or byte-compare it without a re-serialization step that could drift.
  std::size_t begin = 0;
  std::size_t end = 0;

  /// This value's exact source text within `input` (the string_view the
  /// DOM was parsed from — the caller keeps it alive).
  std::string_view span(std::string_view input) const {
    return input.substr(begin, end - begin);
  }

  const Value& at(const std::string& k) const;
  bool has(const std::string& k) const { return object.count(k) != 0; }
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  bool as_bool() const;
  bool is_null() const { return type == Type::kNull; }
};

/// Parses exactly one JSON value spanning the whole input (trailing
/// garbage is an error). Throws std::runtime_error on malformed input.
Value parse(std::string_view text);

/// Checked int64 -> int narrowing: huge values in corrupt input must fail
/// the parse, not wrap around and slip past downstream index validation.
int as_int32(const Value& v, const char* what);

/// Span of top-level member `key`'s value in a JSON object, found by a
/// DOM-free skip-scan (strings and {}/[] nesting tracked, nothing
/// validated or allocated). Returns an empty view when the key is absent
/// or the scan gets confused (escaped key names, malformed input) — the
/// caller falls back to the full parser, so this is a fast path, never an
/// acceptance decision. karma-pland uses it to digest a plan frame's
/// request bytes without building a DOM of the whole model description.
std::string_view scan_member(std::string_view text, std::string_view key);

}  // namespace karma::util::json
