// Stable content hashing for cache keys.
//
// The plan cache (src/cache) fingerprints a PlanRequest by serializing it
// to a canonical text form and hashing that. The hash must be stable
// across runs, platforms, and library versions — std::hash guarantees
// none of that — so we use FNV-1a, a public-domain byte-stream hash with
// fixed published constants. Two independent 64-bit streams (the 64-bit
// constants and a decorrelated seed) give a 128-bit digest, which makes
// accidental collisions in a cache directory astronomically unlikely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace karma::util {

inline constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ULL;

/// One FNV-1a step over `data`, continuing from `state`.
inline std::uint64_t fnv1a_64(std::string_view data,
                              std::uint64_t state = kFnvOffset64) {
  for (const char c : data) {
    state ^= static_cast<unsigned char>(c);
    state *= kFnvPrime64;
  }
  return state;
}

/// 128-bit digest as two decorrelated FNV-1a streams. Value-comparable
/// and hashable; `hex()` is filesystem-safe (32 lowercase hex chars).
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest128&) const = default;

  std::string hex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
      out[static_cast<std::size_t>(15 - i)] = kHex[(hi >> (4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i)
      out[static_cast<std::size_t>(31 - i)] = kHex[(lo >> (4 * i)) & 0xF];
    return out;
  }
};

inline Digest128 digest128(std::string_view data) {
  Digest128 d;
  d.hi = fnv1a_64(data);
  // Second stream: same prime, seed decorrelated by the SplitMix64
  // increment so the two words disagree on every input.
  d.lo = fnv1a_64(data, kFnvOffset64 ^ 0x9e3779b97f4a7c15ULL);
  return d;
}

struct Digest128Hash {
  std::size_t operator()(const Digest128& d) const {
    return static_cast<std::size_t>(d.hi ^ (d.lo * kFnvPrime64));
  }
};

}  // namespace karma::util
