// Small parallel-transform helper for embarrassingly parallel precompute
// loops (the planner's per-block cost table, DESIGN.md §14).
//
// The natural spelling is std::transform(std::execution::par, ...) — the
// graph-cost traversal idiom — and that is what the serial path uses when
// <execution> exists. But libstdc++'s parallel STL silently degrades to
// serial without a TBB backend, and this repo deliberately takes no
// third-party dependencies, so the actually-parallel path is a
// std::thread work-stealing chunk loop: same semantics (out[i] = fn(in[i])
// for every i, any exception rethrown), real cores when the machine has
// them.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#if __has_include(<execution>)
#include <execution>
#define KARMA_HAS_PAR_STL 1
#endif

namespace karma {

/// out[i] = fn(in[i]) for all i, order-independent. `fn` must be safe to
/// call concurrently (it may throw; the lowest-index captured exception
/// is rethrown after all workers join). Falls back to the serial
/// std::execution::par spelling for small inputs or single-core hosts.
template <typename In, typename Out, typename Fn>
void par_transform(const std::vector<In>& in, std::vector<Out>& out, Fn fn) {
  const std::size_t n = in.size();
  out.resize(n);
  constexpr std::size_t kGrain = 8;  // below this, thread spawn dominates
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 1 && n >= 2 * kGrain) {
    const std::size_t workers = std::min(hw, (n + kGrain - 1) / kGrain);
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        try {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n) break;
            out[i] = fn(in[i]);
          }
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (auto& t : pool) t.join();
    for (auto& err : errors)
      if (err) std::rethrow_exception(err);
    return;
  }
#if defined(KARMA_HAS_PAR_STL)
  std::transform(std::execution::par, in.begin(), in.end(), out.begin(), fn);
#else
  std::transform(in.begin(), in.end(), out.begin(), fn);
#endif
}

}  // namespace karma
