#include "src/util/logging.h"

#include <atomic>
#include <iostream>

namespace karma {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace karma
