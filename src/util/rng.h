// Deterministic pseudo-random number generation.
//
// All stochastic components (synthetic data, simulated annealing,
// data-parallel shard shuffling) take an explicit Rng so experiments are
// reproducible byte-for-byte. We use SplitMix64 (public-domain algorithm by
// Steele et al.) because it is tiny, fast, and has well-understood quality.
#pragma once

#include <cstdint>

namespace karma {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  ///
  /// Rejection sampling: a bare `next_u64() % n` maps 2^64 values onto n
  /// buckets, so when n does not divide 2^64 the low (2^64 mod n)
  /// residues receive one extra preimage each — a bias that is
  /// negligible for small n but grows to a full 2x skew as n approaches
  /// 2^64. Draws are retried until they land below the largest multiple
  /// of n, which makes every residue exactly equally likely. The
  /// expected retry count is < 1 for every n.
  std::uint64_t next_below(std::uint64_t n) {
    // 2^64 mod n, computed without 128-bit arithmetic.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform float in [-scale, scale). Used for weight init.
  float next_symmetric(float scale) {
    return (static_cast<float>(next_double()) * 2.0f - 1.0f) * scale;
  }

  /// Derive an independent stream (for per-worker RNGs).
  Rng split() { return Rng(next_u64() ^ 0xdeadbeefcafef00dULL); }

 private:
  std::uint64_t state_;
};

}  // namespace karma
