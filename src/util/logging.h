// Minimal leveled logger. Single-threaded use is lock-free; concurrent use
// serializes on an internal mutex (CP.20: RAII lock).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace karma {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe sink to stderr.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define KARMA_LOG(level) ::karma::detail::LogLine(::karma::LogLevel::level)

}  // namespace karma
