// Cooperative cancellation + live progress for long-running searches.
//
// The Opt-1/Opt-2 planning search is an offline computation in the paper;
// as a service (karma::api::Engine) the same search must be *interruptible*
// — a tenant cancels, a deadline passes, a candidate budget runs out — and
// *observable* — a waiter wants to know how far the search has gotten
// before deciding to keep waiting. CancelToken is both channels in one
// value: the search polls should_stop() at its candidate boundaries (never
// mid-simulation, so stopping can never corrupt planner state) and
// publishes progress through the same shared state the waiters read.
//
// A default-constructed token is inert: it never stops anything, and
// progress writes are dropped. That keeps the non-service entry points
// (tests, benches, the deprecated synchronous Session shim) zero-cost and
// signature-compatible.
//
// Determinism: stopping a search only truncates it — the token never
// injects randomness or reorders evaluations, so a search that runs to
// completion under a token is bit-identical to one run without, and a
// cancelled search leaves no state behind (each planner run builds fresh
// rng and memo state).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace karma {

/// Why a cooperative search stopped early (StopReason::kNone = it didn't).
enum class StopReason {
  kNone = 0,
  kCancelled,  ///< a caller explicitly cancelled (or all waiters left)
  kDeadline,   ///< the wall-clock deadline passed
  kBudget,     ///< the candidate-evaluation budget ran out
};

inline const char* stop_reason_name(StopReason r) {
  switch (r) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kBudget: return "budget";
  }
  return "?";
}

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: never stops, drops progress. The default for every
  /// caller that doesn't need cancellation.
  CancelToken() = default;

  /// Live token backed by shared state; copies observe and control the
  /// same search.
  static CancelToken make() {
    CancelToken token;
    token.state_ = std::make_shared<State>();
    return token;
  }

  bool valid() const { return state_ != nullptr; }

  // ---- Control side (Engine / tests) ----

  void cancel() {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Absolute wall-clock stop time; Clock::time_point::max() = none.
  void set_deadline(Clock::time_point deadline) {
    if (state_)
      state_->deadline_ns.store(to_ns(deadline), std::memory_order_relaxed);
  }

  /// Max candidate evaluations before kBudget; <= 0 = unbounded.
  void set_max_candidates(std::int64_t n) {
    if (state_)
      state_->max_candidates.store(
          n > 0 ? n : std::numeric_limits<std::int64_t>::max(),
          std::memory_order_relaxed);
  }

  // ---- Search side (planner) ----

  /// The single cooperative check. Polled at candidate boundaries only;
  /// the order of checks fixes the reported reason when several tripped
  /// at once (explicit cancel wins over deadline over budget).
  StopReason stop_reason() const {
    if (!state_) return StopReason::kNone;
    if (state_->cancelled.load(std::memory_order_relaxed))
      return StopReason::kCancelled;
    if (to_ns(Clock::now()) >=
        state_->deadline_ns.load(std::memory_order_relaxed))
      return StopReason::kDeadline;
    if (state_->candidates.load(std::memory_order_relaxed) >=
        state_->max_candidates.load(std::memory_order_relaxed))
      return StopReason::kBudget;
    return StopReason::kNone;
  }
  bool should_stop() const { return stop_reason() != StopReason::kNone; }

  /// One candidate evaluation happened: either a full engine replay
  /// (`simulated`) or a pure memo serve. Feeds both the kBudget check and
  /// the waiters' progress snapshots.
  void count_candidate(bool simulated) const {
    if (!state_) return;
    state_->candidates.fetch_add(1, std::memory_order_relaxed);
    (simulated ? state_->simulations : state_->memo_hits)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Portfolio-annealing workers check in and out around their walks so
  /// waiters can see how much of the search is running concurrently.
  /// Purely observational — never feeds a stop decision, so worker
  /// accounting cannot perturb determinism.
  void worker_started() const {
    if (state_) state_->active_workers.fetch_add(1, std::memory_order_relaxed);
  }
  void worker_finished() const {
    if (state_) state_->active_workers.fetch_sub(1, std::memory_order_relaxed);
  }

  /// A new best feasible objective value (monotone non-increasing).
  void report_best(double cost) const {
    if (!state_) return;
    double seen = state_->best_cost.load(std::memory_order_relaxed);
    while (cost < seen && !state_->best_cost.compare_exchange_weak(
                              seen, cost, std::memory_order_relaxed)) {
    }
  }

  // ---- Observer side (PlanFuture::progress) ----

  std::int64_t candidates() const {
    return state_ ? state_->candidates.load(std::memory_order_relaxed) : 0;
  }
  std::int64_t simulations() const {
    return state_ ? state_->simulations.load(std::memory_order_relaxed) : 0;
  }
  std::int64_t memo_hits() const {
    return state_ ? state_->memo_hits.load(std::memory_order_relaxed) : 0;
  }
  /// Best objective seen so far; +inf until the first feasible candidate.
  double best_cost() const {
    return state_ ? state_->best_cost.load(std::memory_order_relaxed)
                  : std::numeric_limits<double>::infinity();
  }
  /// Annealing workers currently inside their walks (0 outside the
  /// portfolio phase).
  int active_workers() const {
    return state_ ? state_->active_workers.load(std::memory_order_relaxed) : 0;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> deadline_ns{
        std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> max_candidates{
        std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> candidates{0};
    std::atomic<std::int64_t> simulations{0};
    std::atomic<std::int64_t> memo_hits{0};
    std::atomic<double> best_cost{std::numeric_limits<double>::infinity()};
    std::atomic<int> active_workers{0};
  };

  static std::int64_t to_ns(Clock::time_point t) {
    if (t == Clock::time_point::max())
      return std::numeric_limits<std::int64_t>::max();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
  }

  std::shared_ptr<State> state_;  ///< null = inert
};

}  // namespace karma
