#include "src/util/units.h"

#include <array>
#include <cmath>
#include <sstream>

#include "src/util/table.h"

namespace karma {
namespace {
std::string scaled(double v, const std::array<const char*, 5>& suffixes,
                   double base) {
  double mag = std::fabs(v);
  std::size_t idx = 0;
  while (mag >= base && idx + 1 < suffixes.size()) {
    mag /= base;
    v /= base;
    ++idx;
  }
  std::ostringstream os;
  os << format_double(v, idx == 0 ? 0 : 2) << " " << suffixes[idx];
  return os.str();
}
}  // namespace

std::string format_bytes(Bytes b) {
  return scaled(static_cast<double>(b), {"B", "KiB", "MiB", "GiB", "TiB"},
                1024.0);
}

std::string format_flops(Flops f) {
  return scaled(f, {"FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP"}, 1000.0);
}

std::string format_seconds(Seconds s) {
  std::ostringstream os;
  if (s < 1e-6) {
    os << format_double(s * 1e9, 1) << " ns";
  } else if (s < 1e-3) {
    os << format_double(s * 1e6, 1) << " us";
  } else if (s < 1.0) {
    os << format_double(s * 1e3, 1) << " ms";
  } else if (s < 120.0) {
    os << format_double(s, 2) << " s";
  } else if (s < 7200.0) {
    os << format_double(s / 60.0, 1) << " min";
  } else {
    os << format_double(s / 3600.0, 2) << " h";
  }
  return os.str();
}

}  // namespace karma
