// The typed infeasibility channel shared by the simulator, the tier
// ledgers, and the schedule generator.
//
// A candidate plan can be *infeasible* — it deadlocks in the engine, its
// spill routing finds no tier with room, its worst-case residency exceeds
// a tier's capacity. The searches in src/core and src/solver treat those
// as "score this candidate +inf and move on". Before this type existed
// they threw plain std::runtime_error (or worse, std::invalid_argument),
// and the feasibility filters had to catch std::exception wholesale —
// which silently classified std::bad_alloc and ledger logic_errors as
// "infeasible candidate" instead of crashing. Everything that means
// "this plan cannot run on this device" now throws InfeasibleError, and
// the filters catch exactly that; programmer errors (mispaired ledger
// releases, malformed op lists) stay logic_error / invalid_argument and
// propagate.
//
// InfeasibleError derives from std::runtime_error so pre-existing
// boundary handlers (the api::Session diagnostics layer catches
// std::runtime_error to build PlanError) keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace karma {

class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace karma
