#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace karma {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const std::size_t n = n_ + other.n_;
  const double delta = other.mean_ - mean_;
  // Chan/Golub/LeVeque pairwise update: the cross term restores the
  // spread between the two shard means.
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = n;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("geometric_mean: empty");
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) throw std::invalid_argument("geometric_mean: non-positive");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: range");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace karma
