#include "src/util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace karma {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::begin_row() { rows_.emplace_back(); }

void Table::add_cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("Table: add_cell before begin_row");
  if (rows_.back().size() >= header_.size())
    throw std::logic_error("Table: too many cells in row");
  rows_.back().push_back(std::move(value));
}

void Table::add_cell(double value, int precision) {
  add_cell(format_double(value, precision));
}

void Table::add_cell(std::int64_t value) { add_cell(std::to_string(value)); }

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < width.size(); ++c)
      s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  }();

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << " " << v << std::string(width[c] - v.size(), ' ') << " |";
    }
    os << "\n";
  };
  os << rule;
  emit_row(header_);
  os << rule;
  for (const auto& row : rows_) emit_row(row);
  os << rule;
  return os.str();
}

std::string Table::to_csv() const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << quote(header_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << quote(row[c]);
    os << "\n";
  }
  return os.str();
}

}  // namespace karma
