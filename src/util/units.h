// Strongly-typed physical units used throughout KARMA.
//
// The simulator mixes three quantities constantly — bytes, seconds, and
// floating-point operations — and unit mix-ups are the classic source of
// silent 1000x errors in performance models. Everything below is
// constexpr-friendly and zero-overhead.
#pragma once

#include <cstdint>
#include <string>

namespace karma {

/// Bytes as a signed 64-bit count (signed so that deltas are representable).
using Bytes = std::int64_t;

/// Seconds of simulated (or real) time.
using Seconds = double;

/// Floating-point operation count.
using Flops = double;

/// Bytes-per-second throughput.
using Bandwidth = double;

inline constexpr Bytes operator""_B(unsigned long long v) {
  return static_cast<Bytes>(v);
}
inline constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024;
}
inline constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024 * 1024;
}
inline constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) * 1024 * 1024 * 1024;
}

/// SI giga/tera helpers for bandwidths and FLOP rates.
inline constexpr double operator""_GBps(unsigned long long v) {
  return static_cast<double>(v) * 1e9;
}
inline constexpr double operator""_GFLOPS(unsigned long long v) {
  return static_cast<double>(v) * 1e9;
}
inline constexpr double operator""_TFLOPS(unsigned long long v) {
  return static_cast<double>(v) * 1e12;
}
inline constexpr double operator""_TFLOPS(long double v) {
  return static_cast<double>(v) * 1e12;
}

/// Human-readable byte string, e.g. "1.50 GiB".
std::string format_bytes(Bytes b);

/// Human-readable duration, e.g. "12.3 ms".
std::string format_seconds(Seconds s);

/// Human-readable FLOP count, e.g. "3.8 GFLOP".
std::string format_flops(Flops f);

}  // namespace karma
