#include "src/util/json.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace karma::util::json {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::value(std::int64_t v) {
  comma();
  // to_chars emits the same minimal-decimal bytes snprintf("%PRId64")
  // would, an order of magnitude faster — integers dominate a serialized
  // model description (every layer is mostly shape/channel counts), and
  // request serialization sits on the karma-pland client's hit path.
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, r.ptr);
}

void Writer::value(double d) {
  comma();
  if (std::isnan(d))
    throw std::invalid_argument("json::Writer: NaN is not representable");
  if (std::isinf(d)) {
    // JSON has no infinity literal; an overflowing decimal parses back to
    // the same +/-inf via strtod, keeping the round-trip byte-stable.
    out_ += d > 0 ? "1e999" : "-1e999";
    return;
  }
  // %.17g round-trips every finite IEEE-754 double exactly.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
}

void Writer::string(std::string_view s) {
  // Clean runs append in bulk; the per-character path only ever runs for
  // the rare byte that actually needs escaping. Emitted bytes are
  // identical to a naive per-character walk.
  out_ += '"';
  std::size_t flushed = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '"' && c != '\\' && static_cast<unsigned char>(c) >= 0x20)
      continue;
    out_.append(s.data() + flushed, i - flushed);
    flushed = i + 1;
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      default: {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out_ += buf;
      }
    }
  }
  out_.append(s.data() + flushed, s.size() - flushed);
  out_ += '"';
}

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

const Value& Value::at(const std::string& k) const {
  const auto it = object.find(k);
  if (it == object.end())
    throw std::runtime_error("missing key '" + k + "'");
  return it->second;
}

std::int64_t Value::as_int() const {
  if (type != Type::kNumber || !integral)
    throw std::runtime_error("expected integer");
  return integer;
}

double Value::as_double() const {
  if (type != Type::kNumber) throw std::runtime_error("expected number");
  return integral ? static_cast<double>(integer) : number;
}

const std::string& Value::as_string() const {
  if (type != Type::kString) throw std::runtime_error("expected string");
  return str;
}

bool Value::as_bool() const {
  if (type != Type::kBool) throw std::runtime_error("expected bool");
  return boolean;
}

int as_int32(const Value& v, const char* what) {
  const std::int64_t x = v.as_int();
  if (x < INT_MIN || x > INT_MAX)
    throw std::runtime_error(std::string(what) + " out of int range");
  return static_cast<int>(x);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size())
      throw std::runtime_error("trailing characters after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();  // skips leading whitespace
    const std::size_t begin = pos_;
    Value v = [&] {
      switch (c) {
        case '{': return parse_object();
        case '[': return parse_array();
        case '"': return parse_string();
        case 't':
        case 'f': return parse_bool();
        case 'n': return parse_null();
        default: return parse_number();
      }
    }();
    v.begin = begin;
    v.end = pos_;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (consume('}')) return v;
    do {
      Value key = parse_string();
      expect(':');
      v.object.emplace(std::move(key.str), parse_value());
    } while (consume(','));
    expect('}');
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
    } while (consume(','));
    expect(']');
    return v;
  }

  Value parse_string() {
    expect('"');
    Value v;
    v.type = Value::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            const std::string hex(text_.substr(pos_, 4));
            for (const char h : hex)
              if (!std::isxdigit(static_cast<unsigned char>(h)))
                throw std::runtime_error("bad \\u digits");
            const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
            // The writer only emits \u for ASCII control characters;
            // anything wider would be silently truncated here, so reject.
            if (cp > 0x7F)
              throw std::runtime_error("non-ASCII \\u escape unsupported");
            pos_ += 4;
            c = static_cast<char>(cp);
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      }
      v.str += c;
    }
    expect('"');
    return v;
  }

  Value parse_bool() {
    Value v;
    v.type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  Value parse_null() {
    if (text_.compare(pos_, 4, "null") != 0)
      throw std::runtime_error("bad literal");
    pos_ += 4;
    return {};
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string tok(text_.substr(start, pos_ - start));
    if (tok.empty()) throw std::runtime_error("bad number");
    Value v;
    v.type = Value::Type::kNumber;
    v.integral = tok.find_first_of(".eE") == std::string::npos;
    char* end = nullptr;
    if (v.integral) {
      errno = 0;
      v.integer = std::strtoll(tok.c_str(), &end, 10);
      if (end != tok.c_str() + tok.size() || errno == ERANGE)
        throw std::runtime_error("bad number '" + tok + "'");
    }
    v.number = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size())
      throw std::runtime_error("bad number '" + tok + "'");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

// ---------------------------------------------------------------------------
// scan_member
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kNpos = std::string_view::npos;

std::size_t scan_ws(std::string_view t, std::size_t p) {
  while (p < t.size() && std::isspace(static_cast<unsigned char>(t[p]))) ++p;
  return p;
}

/// `p` at the opening quote; returns one past the closing quote.
std::size_t scan_string(std::string_view t, std::size_t p) {
  for (++p; p < t.size(); ++p) {
    if (t[p] == '\\') {
      ++p;  // whatever follows is escaped, including '"'
    } else if (t[p] == '"') {
      return p + 1;
    }
  }
  return kNpos;
}

/// `p` at the first byte of a value; returns one past its last byte.
std::size_t scan_value(std::string_view t, std::size_t p) {
  if (p >= t.size()) return kNpos;
  const char c = t[p];
  if (c == '"') return scan_string(t, p);
  if (c == '{' || c == '[') {
    int depth = 0;
    while (p < t.size()) {
      const char d = t[p];
      if (d == '"') {
        p = scan_string(t, p);
        if (p == kNpos) return kNpos;
        continue;
      }
      if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        if (--depth == 0) return p + 1;
      }
      ++p;
    }
    return kNpos;
  }
  // number / true / false / null: up to the next structural delimiter
  while (p < t.size() && t[p] != ',' && t[p] != '}' && t[p] != ']' &&
         !std::isspace(static_cast<unsigned char>(t[p])))
    ++p;
  return p;
}

}  // namespace

std::string_view scan_member(std::string_view text, std::string_view key) {
  std::size_t p = scan_ws(text, 0);
  if (p >= text.size() || text[p] != '{') return {};
  ++p;
  while (true) {
    p = scan_ws(text, p);
    if (p >= text.size() || text[p] != '"') return {};
    const std::size_t key_begin = p + 1;
    const std::size_t key_close = scan_string(text, p);
    if (key_close == kNpos) return {};
    // Compared against the RAW key bytes: a key that needs unescaping to
    // match simply misses, and the caller's full parse handles it.
    const std::string_view raw_key =
        text.substr(key_begin, key_close - 1 - key_begin);
    p = scan_ws(text, key_close);
    if (p >= text.size() || text[p] != ':') return {};
    p = scan_ws(text, p + 1);
    const std::size_t value_begin = p;
    const std::size_t value_end = scan_value(text, p);
    if (value_end == kNpos) return {};
    if (raw_key == key)
      return text.substr(value_begin, value_end - value_begin);
    p = scan_ws(text, value_end);
    if (p >= text.size() || text[p] != ',') return {};
    ++p;
  }
}

}  // namespace karma::util::json
