// ASCII / CSV table rendering used by the benchmark harnesses to print
// paper-style tables (Table IV, Table V, ...) and figure series.
#pragma once

#include <string>
#include <vector>

namespace karma {

/// A simple column-aligned table. Cells are strings; numeric convenience
/// overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent add_cell calls append to it.
  void begin_row();
  void add_cell(std::string value);
  void add_cell(double value, int precision = 3);
  void add_cell(std::int64_t value);

  /// Convenience: add a full row at once.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render with box-drawing alignment, suitable for terminals.
  std::string to_ascii() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (helper shared with Table).
std::string format_double(double v, int precision);

}  // namespace karma
