#include "src/calib/profile.h"

#include <stdexcept>
#include <utility>

#include "src/tier/hierarchy.h"
#include "src/util/json.h"

namespace karma::calib {

namespace json = util::json;

const char* cost_kind_name(CostKind kind) {
  switch (kind) {
    case CostKind::kCompute: return "compute";
    case CostKind::kH2d: return "h2d";
    case CostKind::kD2h: return "d2h";
    case CostKind::kNvmeRead: return "nvme_read";
    case CostKind::kNvmeWrite: return "nvme_write";
    case CostKind::kCpuUpdate: return "cpu_update";
  }
  return "?";
}

std::optional<CostKind> cost_kind_from(std::string_view name) {
  for (const CostKind kind : kAllCostKinds)
    if (name == cost_kind_name(kind)) return kind;
  return std::nullopt;
}

std::string ProfileArtifact::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("version");
  w.value(version);
  w.key("device_class");
  w.value(device_class);
  w.key("model_name");
  w.value(model_name);
  w.key("samples");
  w.begin_array();
  for (const ProfileSample& s : samples) {
    w.begin_object();
    w.key("kind");
    w.value(cost_kind_name(s.kind));
    w.key("bytes");
    w.value(static_cast<std::int64_t>(s.bytes));
    w.key("predicted");
    w.value(s.predicted);
    w.key("measured");
    w.value(s.measured);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

ProfileArtifact ProfileArtifact::from_json(std::string_view text) {
  const json::Value root = json::parse(text);
  ProfileArtifact p;
  p.version = json::as_int32(root.at("version"), "profile version");
  if (p.version != kProfileJsonVersion)
    throw std::runtime_error("ProfileArtifact: unsupported version " +
                             std::to_string(p.version));
  p.device_class = root.at("device_class").as_string();
  p.model_name = root.at("model_name").as_string();
  for (const json::Value& s : root.at("samples").array) {
    // Unknown kinds are skipped, not fatal: a newer recorder may emit op
    // kinds this build does not know how to calibrate.
    const auto kind = cost_kind_from(s.at("kind").as_string());
    if (!kind) continue;
    ProfileSample sample;
    sample.kind = *kind;
    sample.bytes = static_cast<Bytes>(s.at("bytes").as_int());
    sample.predicted = s.at("predicted").as_double();
    sample.measured = s.at("measured").as_double();
    p.samples.push_back(sample);
  }
  return p;
}

ProfileRecorder::ProfileRecorder(const sim::DeviceSpec& device,
                                 std::string model_name)
    : device_(device), model_name_(std::move(model_name)) {}

void ProfileRecorder::record(CostKind kind, Bytes bytes, Seconds measured) {
  Seconds predicted = 0.0;
  switch (kind) {
    case CostKind::kCompute:
      // Bandwidth roofline only: the recorder has no FLOP count for the
      // op, and the numeric twin in train/ is memory-bound anyway.
      predicted = device_.kernel_time(graph::LayerKind::kReLU, 0.0, bytes);
      break;
    case CostKind::kH2d:
      predicted = device_.h2d_time(bytes);
      break;
    case CostKind::kD2h:
      predicted = device_.d2h_time(bytes);
      break;
    case CostKind::kNvmeRead:
      // Full restore path (NVMe -> host -> device), matching what an
      // executor can actually time around a storage swap-in.
      if (!device_.has_nvme()) return;
      predicted = device_.read_from_tier_time(tier::Tier::kNvme, bytes);
      break;
    case CostKind::kNvmeWrite:
      if (!device_.has_nvme()) return;
      predicted = device_.write_to_tier_time(tier::Tier::kNvme, bytes);
      break;
    case CostKind::kCpuUpdate:
      predicted = device_.cpu_update_time(bytes);
      break;
  }
  record_predicted(kind, bytes, predicted, measured);
}

void ProfileRecorder::record_predicted(CostKind kind, Bytes bytes,
                                       Seconds predicted, Seconds measured) {
  ProfileSample s;
  s.kind = kind;
  s.bytes = bytes;
  s.predicted = predicted;
  s.measured = measured;
  samples_.push_back(s);
}

ProfileArtifact ProfileRecorder::artifact() const {
  ProfileArtifact p;
  p.device_class = device_.name;
  p.model_name = model_name_;
  p.samples = samples_;
  return p;
}

}  // namespace karma::calib
