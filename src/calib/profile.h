// Execution profiles — the "measure" leg of the plan→execute→measure→
// re-plan loop (DESIGN.md §13).
//
// A ProfileArtifact is a flat list of (op kind, payload bytes, predicted
// seconds, measured seconds) samples captured while a plan actually ran.
// The predicted side comes from the same analytic DeviceSpec cost model
// the planner searched with; the measured side is wall-clock. The pairing
// is the whole point: calib::fit only ever looks at measured/predicted
// ratios, so a profile is useful even when the absolute numbers are noisy
// — systematic model error shows up as a ratio far from 1.0 across many
// sample sizes, while per-sample noise cancels in the median.
//
// ProfileRecorder is the capture half: train::OocExecutor calls record()
// around each timed op (opt-in — a null recorder costs nothing), and the
// recorder computes the analytic prediction itself from the DeviceSpec it
// was built with. Artifacts serialize through util::json's deterministic
// Writer (same byte-stability discipline as plan JSON) and get the same
// golden-fixture treatment in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/device.h"
#include "src/util/units.h"

namespace karma::calib {

/// Schema version stamped into every ProfileArtifact JSON.
inline constexpr int kProfileJsonVersion = 1;

/// The op-kind vocabulary shared by profiles, calibration tables, and the
/// sim::CostScale overlay — one entry per independently-scaled cost path
/// in DeviceSpec.
enum class CostKind {
  kCompute = 0,  ///< kernel_time (forward/backward layer math)
  kH2d,          ///< host->device swap-in
  kD2h,          ///< device->host swap-out
  kNvmeRead,     ///< NVMe->host streaming read
  kNvmeWrite,    ///< host->NVMe streaming write
  kCpuUpdate,    ///< host-side optimizer step
};

inline constexpr CostKind kAllCostKinds[] = {
    CostKind::kCompute,   CostKind::kH2d,       CostKind::kD2h,
    CostKind::kNvmeRead,  CostKind::kNvmeWrite, CostKind::kCpuUpdate,
};

/// Stable wire name ("compute", "h2d", ...); the JSON schema key.
const char* cost_kind_name(CostKind kind);

/// Inverse of cost_kind_name; nullopt for unknown names (forward-compat:
/// readers skip kinds they don't know rather than failing the parse).
std::optional<CostKind> cost_kind_from(std::string_view name);

/// One timed op.
struct ProfileSample {
  CostKind kind = CostKind::kCompute;
  Bytes bytes = 0;         ///< payload the op moved or touched
  Seconds predicted = 0.0; ///< analytic DeviceSpec cost at record time
  Seconds measured = 0.0;  ///< observed wall-clock

  friend bool operator==(const ProfileSample&, const ProfileSample&) = default;
};

/// A versioned, deterministic-JSON batch of samples from one run.
struct ProfileArtifact {
  int version = kProfileJsonVersion;
  std::string device_class;  ///< DeviceSpec::name the predictions used
  std::string model_name;    ///< provenance only; fit ignores it
  std::vector<ProfileSample> samples;

  /// Deterministic JSON (util::json::Writer discipline): equal artifacts
  /// produce byte-identical text.
  std::string to_json() const;

  /// Parses an artifact; throws std::runtime_error on malformed input or
  /// an unsupported version. Samples with unknown kind names are skipped.
  static ProfileArtifact from_json(std::string_view text);

  friend bool operator==(const ProfileArtifact&,
                         const ProfileArtifact&) = default;
};

/// Capture hook. Owners construct it with the DeviceSpec whose analytic
/// model priced the plan being executed; each record() computes that
/// model's prediction for the op and appends a sample. Not thread-safe —
/// one recorder per executor, like the executor itself.
class ProfileRecorder {
 public:
  explicit ProfileRecorder(const sim::DeviceSpec& device,
                           std::string model_name = {});

  /// Records one op, deriving the predicted time from the recorder's
  /// DeviceSpec: kCompute uses the bandwidth roofline (kernel_time with
  /// zero FLOPs — honest for the memory-bound numeric twin in train/),
  /// kH2d/kD2h the interconnect legs, kNvme* the tiered stream times, and
  /// kCpuUpdate the host update model. NVMe kinds are dropped when the
  /// device has no NVMe tier (nothing to calibrate against).
  void record(CostKind kind, Bytes bytes, Seconds measured);

  /// Records one op with an explicit prediction — for callers (benches,
  /// tests) that priced the op themselves.
  void record_predicted(CostKind kind, Bytes bytes, Seconds predicted,
                        Seconds measured);

  std::size_t sample_count() const { return samples_.size(); }

  /// Snapshot of everything recorded so far.
  ProfileArtifact artifact() const;

 private:
  sim::DeviceSpec device_;
  std::string model_name_;
  std::vector<ProfileSample> samples_;
};

}  // namespace karma::calib
