#include "src/calib/repair.h"

#include <algorithm>

namespace karma::calib {

int repair_anneal_budget(int cold_iterations, double anneal_scale) {
  return std::max(60, static_cast<int>(cold_iterations * anneal_scale));
}

core::PlanResult repair(const graph::Model& model,
                        const sim::DeviceSpec& device,
                        const CalibrationTable& table,
                        const std::vector<sim::Block>& seed_blocks,
                        const std::vector<core::BlockPolicy>& seed_policies,
                        const RepairOptions& options,
                        const CancelToken& control,
                        double cold_search_seconds) {
  core::PlannerOptions planner_options = options.planner;
  planner_options.anneal_iterations = repair_anneal_budget(
      planner_options.anneal_iterations, options.anneal_scale);
  const core::KarmaPlanner planner(model, apply(table, device),
                                   planner_options);
  core::PlanResult result =
      planner.plan_from(seed_blocks, seed_policies, control);
  if (cold_search_seconds > 0.0 && result.search.search_seconds > 0.0)
    result.search.repair_vs_cold_speedup =
        cold_search_seconds / result.search.search_seconds;
  return result;
}

}  // namespace karma::calib
