// calib::repair — re-plan cheaply when calibration drifts (DESIGN.md §13).
//
// When a new CalibrationTable lands, every cached plan's RequestKey goes
// stale by construction (the table hash is in the key preamble). Cold
// re-searching the whole fleet's plans would be the expensive answer; the
// cheap one is here: the stale plan is almost certainly still a *good*
// plan — measured constants drift, they do not teleport — so we re-anneal
// starting from it under the corrected cost model, reusing the planner's
// EvalMemo/anneal machinery (KarmaPlanner::plan_from), with a reduced
// anneal budget justified by the warm seed. The repaired plan reports its
// wall-clock and, when a cold baseline is supplied, the repair-vs-cold
// speedup in SearchStats.
#pragma once

#include "src/calib/table.h"
#include "src/core/planner.h"

namespace karma::calib {

/// The anneal budget a warm-start repair search runs, given the cold
/// budget: `anneal_scale` of it, floored at 60 iterations so tiny cold
/// budgets still get a real refinement pass. Shared by repair() and the
/// api::Engine's internal repair path, so the two agree by construction.
int repair_anneal_budget(int cold_iterations, double anneal_scale = 0.25);

struct RepairOptions {
  /// Planner knobs for the repair search. anneal_iterations here is the
  /// *cold* budget; repair runs anneal_scale of it.
  core::PlannerOptions planner;
  /// Fraction of the cold anneal budget the warm-start re-anneal gets
  /// (floored at 60 iterations). The seed already sits near an optimum of
  /// a nearby cost surface; a quarter budget recovers the shifted optimum
  /// in practice while keeping repair well under cold wall-clock.
  double anneal_scale = 0.25;
};

/// Repairs `seed_blocks`/`seed_policies` (a plan searched under the
/// analytic model, or under an older table) for `device` as corrected by
/// `table`. Returns the planner result with SearchStats::warm_started set
/// and, when `cold_search_seconds` > 0 (a baseline the caller measured),
/// SearchStats::repair_vs_cold_speedup filled. Throws like
/// KarmaPlanner::plan on total infeasibility.
core::PlanResult repair(const graph::Model& model,
                        const sim::DeviceSpec& device,
                        const CalibrationTable& table,
                        const std::vector<sim::Block>& seed_blocks,
                        const std::vector<core::BlockPolicy>& seed_policies,
                        const RepairOptions& options = {},
                        const CancelToken& control = {},
                        double cold_search_seconds = 0.0);

}  // namespace karma::calib
