#include "src/calib/table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/util/hash.h"
#include "src/util/json.h"

namespace karma::calib {

namespace json = util::json;

double CalibrationTable::factor(const std::string& device_class,
                                CostKind kind) const {
  const std::string key = cost_kind_name(kind);
  const auto lookup = [&](const std::string& cls) -> const double* {
    const auto row = factors.find(cls);
    if (row == factors.end()) return nullptr;
    const auto cell = row->second.find(key);
    return cell == row->second.end() ? nullptr : &cell->second;
  };
  if (const double* f = lookup(device_class)) return *f;
  if (const double* f = lookup(kAnyDeviceClass)) return *f;
  return 1.0;
}

std::string CalibrationTable::to_json() const {
  json::Writer w;
  w.begin_object();
  w.key("version");
  w.value(version);
  w.key("factors");
  w.begin_object();
  for (const auto& [cls, row] : factors) {
    w.key(cls.c_str());
    w.begin_object();
    for (const auto& [kind, f] : row) {
      w.key(kind.c_str());
      w.value(f);
    }
    w.end_object();
  }
  w.end_object();
  w.key("sample_count");
  w.value(sample_count);
  w.key("rejected_outliers");
  w.value(rejected_outliers);
  w.end_object();
  return w.take();
}

CalibrationTable CalibrationTable::from_json(std::string_view text) {
  const json::Value root = json::parse(text);
  CalibrationTable t;
  t.version = json::as_int32(root.at("version"), "calibration version");
  if (t.version != kCalibrationJsonVersion)
    throw std::runtime_error("CalibrationTable: unsupported version " +
                             std::to_string(t.version));
  for (const auto& [cls, row] : root.at("factors").object) {
    if (row.type != json::Value::Type::kObject)
      throw std::runtime_error("CalibrationTable: factor row is not an object");
    std::map<std::string, double> cells;
    for (const auto& [kind, f] : row.object) {
      const double factor = f.as_double();
      if (!(factor > 0.0) || !std::isfinite(factor))
        throw std::runtime_error(
            "CalibrationTable: factor must be finite and positive");
      cells[kind] = factor;
    }
    t.factors[cls] = std::move(cells);
  }
  if (root.has("sample_count"))
    t.sample_count = root.at("sample_count").as_int();
  if (root.has("rejected_outliers"))
    t.rejected_outliers = root.at("rejected_outliers").as_int();
  return t;
}

std::string CalibrationTable::content_hash() const {
  return util::digest128(to_json()).hex();
}

namespace {

double median_of(std::vector<double> v) {
  // Callers guarantee non-empty.
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

CalibrationTable fit(const std::vector<ProfileArtifact>& profiles,
                     const FitOptions& options) {
  CalibrationTable table;
  // Pool ratios per (device_class, kind) cell across every profile.
  std::map<std::string, std::map<std::string, std::vector<double>>> cells;
  for (const ProfileArtifact& p : profiles) {
    for (const ProfileSample& s : p.samples) {
      if (!(s.predicted > 0.0) || !(s.measured > 0.0)) continue;
      const double ratio = s.measured / s.predicted;
      if (!std::isfinite(ratio)) continue;
      cells[p.device_class][cost_kind_name(s.kind)].push_back(ratio);
      ++table.sample_count;
    }
  }
  for (auto& [cls, row] : cells) {
    for (auto& [kind, ratios] : row) {
      double med = median_of(ratios);
      if (ratios.size() >= 4) {
        // MAD-band rejection: one throttling event or page-fault storm in
        // a cell must not drag the factor. The band floor (1% of the
        // median) keeps a zero MAD — all samples identical — from
        // rejecting legitimate duplicates of the same ratio.
        std::vector<double> dev;
        dev.reserve(ratios.size());
        for (const double r : ratios) dev.push_back(std::fabs(r - med));
        const double mad = median_of(dev);
        const double band =
            options.outlier_band * std::max(mad, 0.01 * std::fabs(med));
        std::vector<double> kept;
        kept.reserve(ratios.size());
        for (const double r : ratios)
          if (std::fabs(r - med) <= band) kept.push_back(r);
        table.rejected_outliers +=
            static_cast<std::int64_t>(ratios.size() - kept.size());
        if (!kept.empty()) med = median_of(kept);
      }
      table.factors[cls][kind] =
          std::clamp(med, options.min_factor, options.max_factor);
    }
  }
  return table;
}

sim::DeviceSpec apply(const CalibrationTable& table,
                      const sim::DeviceSpec& device) {
  sim::DeviceSpec out = device;
  // Compose: a spec that already carries a scale gets the new factors
  // multiplied on top, so apply(fit(...), apply(old, d)) behaves like the
  // cumulative correction it is.
  out.scale.compute *= table.factor(device.name, CostKind::kCompute);
  out.scale.h2d *= table.factor(device.name, CostKind::kH2d);
  out.scale.d2h *= table.factor(device.name, CostKind::kD2h);
  out.scale.nvme_read *= table.factor(device.name, CostKind::kNvmeRead);
  out.scale.nvme_write *= table.factor(device.name, CostKind::kNvmeWrite);
  out.scale.cpu_update *= table.factor(device.name, CostKind::kCpuUpdate);
  return out;
}

}  // namespace karma::calib
