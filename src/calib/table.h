// CalibrationTable — the fitted, versioned, content-hashed artifact that
// carries measured-cost corrections from profiles back into planning
// (DESIGN.md §13).
//
// The table is a per-device-class, per-op-kind map of multiplicative
// factors: factor 1.6 on ("V100...", h2d) means host->device transfers
// were measured 1.6x slower than the analytic model predicts, and every
// future plan for that device class should price them accordingly.
//
// fit() estimates the factors robustly: per cell it takes the median of
// the measured/predicted ratios, rejects outliers beyond a MAD band
// (one pathological sample — a page fault, a throttling event — must not
// poison the cell), re-medians the survivors, and clamps to a sane range.
//
// The table's deterministic JSON is content-hashed (util::digest128) and
// that hash joins the cache::RequestKey preamble: changing calibration
// changes every key, so stale plans can never be served as current —
// they become repair seeds instead (calib/repair.h).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "src/calib/profile.h"
#include "src/sim/device.h"

namespace karma::calib {

/// Schema version stamped into every CalibrationTable JSON.
inline constexpr int kCalibrationJsonVersion = 1;

/// Wildcard device class: factors under "*" apply to any device that has
/// no exact-name cell for the kind.
inline constexpr const char* kAnyDeviceClass = "*";

struct FitOptions {
  /// Reject ratios farther than this many (scaled) MADs from the median.
  /// Rejection only engages with >= 4 samples in a cell — below that the
  /// median IS the robust estimate.
  double outlier_band = 4.0;
  /// Fitted factors are clamped to [min_factor, max_factor]: a correction
  /// outside this range means the profile or the model is broken, and a
  /// silently-huge factor would do more damage than a clamped one.
  double min_factor = 0.05;
  double max_factor = 20.0;
};

struct CalibrationTable {
  int version = kCalibrationJsonVersion;
  /// device class -> op-kind name (cost_kind_name) -> factor. std::map on
  /// both levels so to_json() is deterministic for free.
  std::map<std::string, std::map<std::string, double>> factors;
  /// Fit provenance (carried in the JSON, not consulted at apply time).
  std::int64_t sample_count = 0;      ///< samples the fit consumed
  std::int64_t rejected_outliers = 0; ///< samples the MAD band discarded

  bool empty() const { return factors.empty(); }

  /// Correction for (device_class, kind): exact cell first, then the "*"
  /// wildcard, else 1.0 (no correction).
  double factor(const std::string& device_class, CostKind kind) const;

  /// Deterministic JSON; equal tables produce byte-identical text.
  std::string to_json() const;

  /// Throws std::runtime_error on malformed input or unsupported version.
  static CalibrationTable from_json(std::string_view text);

  /// digest128 of to_json(), 32 hex chars — the identity that joins the
  /// cache::RequestKey preamble.
  std::string content_hash() const;

  friend bool operator==(const CalibrationTable&,
                         const CalibrationTable&) = default;
};

/// Fits a table from one or more profiles (samples are pooled by
/// (device_class, kind) across profiles). Cells with no valid sample
/// (predicted or measured <= 0) are omitted, so an empty profile set
/// yields an empty — identity — table.
CalibrationTable fit(const std::vector<ProfileArtifact>& profiles,
                     const FitOptions& options = {});

/// The overlay: returns `device` with its CostScale composed with the
/// table's factors for device.name. Planner, Opt-1/Opt-2 search, and
/// feasibility admission all see measured constants by planning against
/// the returned spec.
sim::DeviceSpec apply(const CalibrationTable& table,
                      const sim::DeviceSpec& device);

}  // namespace karma::calib
