#include "src/sim/plan.h"

#include <map>
#include <sstream>
#include <stdexcept>

#include "src/graph/cost_model.h"
#include "src/graph/memory_model.h"

namespace karma::sim {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kForward: return "F";
    case OpKind::kBackward: return "B";
    case OpKind::kRecompute: return "R";
    case OpKind::kSwapOut: return "Sout";
    case OpKind::kSwapIn: return "Sin";
    case OpKind::kAllReduce: return "AR";
    case OpKind::kCpuUpdate: return "U";
    case OpKind::kDeviceUpdate: return "Ud";
  }
  return "?";
}

Stream stream_of(OpKind kind) {
  switch (kind) {
    case OpKind::kForward:
    case OpKind::kBackward:
    case OpKind::kRecompute:
      return Stream::kCompute;
    case OpKind::kSwapIn:
      return Stream::kH2D;
    case OpKind::kSwapOut:
      return Stream::kD2H;
    case OpKind::kAllReduce:
      return Stream::kNet;
    case OpKind::kCpuUpdate:
      return Stream::kCpu;
    case OpKind::kDeviceUpdate:
      return Stream::kCompute;
  }
  return Stream::kCompute;
}

Stream stream_of_op(const Op& op) {
  if (op.tier == tier::Tier::kNvme) {
    if (op.kind == OpKind::kSwapIn) return Stream::kNvmeRead;
    if (op.kind == OpKind::kSwapOut) return Stream::kNvmeWrite;
  }
  return stream_of(op.kind);
}

std::string Plan::schedule_string() const {
  std::ostringstream os;
  int prev_stage = -1;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const int stage = i < stage_of.size() ? stage_of[i] : static_cast<int>(i);
    if (i > 0) os << (stage == prev_stage ? "||" : " -> ");
    os << op_kind_name(ops[i].kind) << ops[i].block + 1;
    // NVMe-tier swaps are primed: Sout3' is a swap-out to storage.
    if (ops[i].tier == tier::Tier::kNvme &&
        (ops[i].kind == OpKind::kSwapIn || ops[i].kind == OpKind::kSwapOut))
      os << "'";
    prev_stage = stage;
  }
  return os.str();
}

BlockCost compute_block_cost(const graph::Model& model, const Block& block,
                             const DeviceSpec& device) {
  BlockCost cost;
  const int dtype = model.dtype_bytes();
  for (int i = block.first_layer; i < block.last_layer; ++i) {
    const graph::Layer& l = model.layer(i);
    const Bytes in_bytes = l.in_shape.rank()
                               ? static_cast<Bytes>(l.in_shape.numel()) * dtype
                               : 0;
    const Bytes out_bytes = static_cast<Bytes>(l.out_shape.numel()) * dtype;
    cost.fwd_time += device.kernel_time(l.kind, graph::forward_flops(l),
                                        in_bytes + out_bytes);
    // Backward touches the saved input, the incoming gradient, and writes
    // the outgoing gradient: ~3x the activation traffic.
    cost.bwd_time += device.kernel_time(l.kind, graph::backward_flops(l),
                                        2 * in_bytes + out_bytes);
  }
  const graph::LayerMemory mem =
      graph::range_memory(model, block.first_layer, block.last_layer);
  cost.act_bytes = mem.activations;
  cost.param_bytes = mem.weights;
  cost.grad_bytes = mem.weight_grads;
  const graph::Layer& last = model.layer(block.last_layer - 1);
  cost.boundary_bytes =
      static_cast<Bytes>(last.out_shape.numel()) * dtype;
  return cost;
}

std::vector<Block> uniform_blocks(const graph::Model& model, int max_layers) {
  if (max_layers <= 0) throw std::invalid_argument("uniform_blocks: max<=0");
  std::vector<Block> blocks;
  const int n = static_cast<int>(model.num_layers());
  for (int first = 0; first < n; first += max_layers) {
    blocks.push_back({first, std::min(first + max_layers, n)});
  }
  return blocks;
}

void validate_plan(const Plan& plan) {
  const auto fail = [&](const std::string& why) {
    throw std::logic_error("validate_plan(" + plan.strategy + "): " + why);
  };
  if (plan.blocks.empty()) fail("no blocks");
  if (plan.costs.size() != plan.blocks.size()) fail("costs size mismatch");
  if (!plan.stage_of.empty() && plan.stage_of.size() != plan.ops.size())
    fail("stage_of size mismatch");

  // Blocks must be a disjoint, complete, ordered cover (9.1 / 9.2).
  int expect = 0;
  for (const auto& b : plan.blocks) {
    if (b.first_layer != expect) fail("blocks not contiguous");
    if (b.last_layer <= b.first_layer) fail("empty block");
    expect = b.last_layer;
  }

  const int nb = plan.num_blocks();
  // Per-iteration residency replay. `acts[b]`: activations usable for the
  // backward pass; `boundary[b]`: the block-output checkpoint a following
  // block's recompute reads.
  struct IterState {
    std::vector<bool> acts, boundary;
    /// Offload tier holding each evicted block's activations (valid only
    /// while `evicted` is set): a swap-in must read from where the
    /// swap-out wrote.
    std::vector<tier::Tier> evicted_to;
    std::vector<bool> evicted;
    int next_fwd = 0;
    int next_bwd = 0;
    explicit IterState(int n)
        : acts(static_cast<std::size_t>(n), false),
          boundary(static_cast<std::size_t>(n), false),
          evicted_to(static_cast<std::size_t>(n), tier::Tier::kHost),
          evicted(static_cast<std::size_t>(n), false),
          next_bwd(n - 1) {}
  };
  std::map<int, IterState> iters;
  const auto iter_state = [&](int it) -> IterState& {
    return iters.try_emplace(it, nb).first->second;
  };

  int op_index = -1;
  for (const Op& op : plan.ops) {
    ++op_index;
    if (op.block < 0 || op.block >= nb) fail("op block out of range");
    if (op.after_op >= op_index) fail("after_op must reference an earlier op");
    IterState& st = iter_state(op.iteration);
    const auto b = static_cast<std::size_t>(op.block);
    switch (op.kind) {
      case OpKind::kForward:
        if (op.block != st.next_fwd) fail("forwards out of order");
        ++st.next_fwd;
        st.acts[b] = op.retains;
        st.boundary[b] = true;
        break;
      case OpKind::kBackward:
        if (op.block != st.next_bwd)
          fail("backwards out of order (block " + std::to_string(op.block) +
               ", expected " + std::to_string(st.next_bwd) + ")");
        --st.next_bwd;
        if (!st.acts[b])
          fail("backward of block " + std::to_string(op.block) +
               " without resident activations (missing SwapIn/Recompute)");
        st.acts[b] = false;  // consumed
        break;
      case OpKind::kRecompute:
        if (op.block > 0 && !st.acts[b - 1] && !st.boundary[b - 1])
          fail("recompute of block " + std::to_string(op.block) +
               " without predecessor output available");
        st.acts[b] = true;
        st.boundary[b] = true;
        break;
      case OpKind::kSwapOut:
        if (op.tier == tier::Tier::kNvme &&
            (!plan.hierarchy || !plan.hierarchy->has(tier::Tier::kNvme)))
          fail("NVMe-tier swap-out without an NVMe tier in the hierarchy");
        // Default-payload swap-outs evict the block's activations; custom
        // payloads (gradients in the distributed pipeline) do not.
        if (op.bytes == Op::kDefault) {
          st.acts[b] = false;
          st.boundary[b] = false;
          st.evicted[b] = true;
          st.evicted_to[b] = op.tier;
        }
        break;
      case OpKind::kSwapIn:
        if (op.tier == tier::Tier::kNvme &&
            (!plan.hierarchy || !plan.hierarchy->has(tier::Tier::kNvme)))
          fail("NVMe-tier swap-in without an NVMe tier in the hierarchy");
        if (op.bytes == Op::kDefault) {
          if (st.evicted[b] && st.evicted_to[b] != op.tier)
            fail("swap-in of block " + std::to_string(op.block) + " from '" +
                 tier::tier_name(op.tier) + "' but it was evicted to '" +
                 tier::tier_name(st.evicted_to[b]) + "'");
          st.acts[b] = true;
          st.boundary[b] = true;
          st.evicted[b] = false;
        }
        break;
      case OpKind::kAllReduce:
      case OpKind::kCpuUpdate:
      case OpKind::kDeviceUpdate:
        if (op.duration < 0.0)
          fail("AllReduce/CpuUpdate/DeviceUpdate requires an explicit duration");
        break;
    }
  }
  for (const auto& [it, st] : iters) {
    if (st.next_fwd != 0 && st.next_fwd != nb)
      fail("iteration " + std::to_string(it) + ": incomplete forward pass");
  }
}

}  // namespace karma::sim
