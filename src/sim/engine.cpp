#include "src/sim/engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/tier/accountant.h"
#include "src/util/infeasible.h"

namespace karma::sim {

Bytes Engine::op_bytes(const Plan& plan, const Op& op) const {
  if (op.bytes != Op::kDefault) return op.bytes;
  return plan.costs[static_cast<std::size_t>(op.block)].act_bytes;
}

Seconds Engine::op_duration(const Plan& plan, const Op& op) const {
  if (op.duration >= 0.0) return op.duration;
  const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  switch (op.kind) {
    case OpKind::kForward:
    case OpKind::kRecompute:
      return c.fwd_time;
    case OpKind::kBackward:
      return c.bwd_time;
    case OpKind::kSwapIn:
      return device_.read_from_tier_time(op.tier, op_bytes(plan, op));
    case OpKind::kSwapOut:
      return device_.write_to_tier_time(op.tier, op_bytes(plan, op));
    case OpKind::kAllReduce:
    case OpKind::kCpuUpdate:
    case OpKind::kDeviceUpdate:
      throw std::logic_error(
          "engine: missing duration for AllReduce/CpuUpdate/DeviceUpdate");
  }
  throw std::logic_error("engine: unhandled op kind");
}

namespace {

bool same_cost(const BlockCost& a, const BlockCost& b) {
  return a.fwd_time == b.fwd_time && a.bwd_time == b.bwd_time &&
         a.act_bytes == b.act_bytes && a.boundary_bytes == b.boundary_bytes &&
         a.param_bytes == b.param_bytes && a.grad_bytes == b.grad_bytes;
}

bool same_op(const Op& a, const Op& b) {
  return a.kind == b.kind && a.block == b.block && a.tier == b.tier &&
         a.residency == b.residency && a.bytes == b.bytes &&
         a.alloc == b.alloc && a.free == b.free && a.duration == b.duration &&
         a.retains == b.retains && a.iteration == b.iteration &&
         a.after_op == b.after_op;
}

bool same_hierarchy(const std::optional<tier::StorageHierarchy>& a,
                    const std::optional<tier::StorageHierarchy>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  const auto& ta = a->tiers();
  const auto& tb = b->tiers();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].tier != tb[i].tier || ta[i].capacity != tb[i].capacity ||
        ta[i].read_bw != tb[i].read_bw || ta[i].write_bw != tb[i].write_bw ||
        ta[i].latency != tb[i].latency)
      return false;
  }
  return true;
}

}  // namespace

int common_op_prefix(const Plan& a, const Plan& b) {
  // Global preconditions: a checkpoint embeds the free-memory counter,
  // the tier ledger, and baseline charges, so any mismatch there makes
  // even an identical op prefix non-resumable.
  if (a.capacity != b.capacity || a.baseline_resident != b.baseline_resident ||
      a.host_baseline_resident != b.host_baseline_resident ||
      a.blocks.size() != b.blocks.size() || a.costs.size() != b.costs.size() ||
      !same_hierarchy(a.hierarchy, b.hierarchy))
    return 0;
  const std::size_t n = std::min(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Op& oa = a.ops[i];
    if (!same_op(oa, b.ops[i])) return static_cast<int>(i);
    // Durations and byte defaults derive from the op's block cost; an op
    // is only "the same" if that cost row matches too.
    const auto blk = static_cast<std::size_t>(oa.block);
    if (!same_cost(a.costs[blk], b.costs[blk])) return static_cast<int>(i);
  }
  return static_cast<int>(n);
}

ExecutionTrace Engine::run(const Plan& plan, const EngineCheckpoint* resume,
                           CheckpointLog* record) const {
  validate_plan(plan);
  const int n = static_cast<int>(plan.ops.size());
  const auto op_at = [&](int i) -> const Op& {
    return plan.ops[static_cast<std::size_t>(i)];
  };

  // Dependency chains:
  //  dep1[i]: latest earlier op on the same block (producer/consumer).
  //  dep2[i]: for Recompute ops, the latest earlier op touching the
  //           predecessor block (its output is the recompute's input).
  std::vector<int> dep1(static_cast<std::size_t>(n), -1);
  std::vector<int> dep2(static_cast<std::size_t>(n), -1);
  {
    std::vector<int> last(plan.blocks.size(), -1);
    for (int i = 0; i < n; ++i) {
      const Op& op = op_at(i);
      const auto b = static_cast<std::size_t>(op.block);
      dep1[static_cast<std::size_t>(i)] = last[b];
      if (op.kind == OpKind::kRecompute && op.block > 0)
        dep2[static_cast<std::size_t>(i)] = last[b - 1];
      last[b] = i;
    }
  }

  // Stream FIFO queues (tier-aware: NVMe swaps bind to the NVMe streams).
  std::array<std::vector<int>, kNumStreams> queue;
  for (int i = 0; i < n; ++i)
    queue[static_cast<std::size_t>(stream_of_op(op_at(i)))].push_back(i);
  std::array<std::size_t, kNumStreams> head{};
  std::array<Seconds, kNumStreams> stream_free_at{};

  std::vector<EngineOpState> state(static_cast<std::size_t>(n));

  const auto resolve = [](Bytes v, Bytes fallback) {
    return v == Op::kDefault ? fallback : v;
  };
  const auto alloc_of = [&](const Op& op) -> Bytes {
    const Bytes act = op_bytes(plan, op);
    const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
    switch (op.kind) {
      case OpKind::kForward:
        return resolve(op.alloc, op.retains ? act : c.boundary_bytes);
      case OpKind::kRecompute:
      case OpKind::kBackward:
      case OpKind::kSwapIn:
        return resolve(op.alloc, act);
      default:
        return resolve(op.alloc, 0);
    }
  };
  const auto free_of = [&](const Op& op) -> Bytes {
    const Bytes act = op_bytes(plan, op);
    switch (op.kind) {
      case OpKind::kBackward:
        // Transient gradient wavefront + the consumed activations.
        return resolve(op.free, 2 * act);
      case OpKind::kSwapOut:
        return resolve(op.free, act);
      default:
        return resolve(op.free, 0);
    }
  };

  // Offload-tier ledger, one class per payload lifetime (DESIGN.md §9):
  // an activation swap-out reserves bytes on its destination tier when it
  // starts (the payload needs the space end-to-end) and the matching
  // swap-in returns them on completion; a gradient-out's bytes live until
  // the block's CPU/device update consumes them; weight-shard traffic
  // reads/writes the pinned host master copy, which is charged once below
  // as the plan's host baseline and never moves. Plans without a hierarchy
  // keep the seed's unbounded-host model; the dummy bandwidth is never
  // read (durations come from the DeviceSpec).
  tier::TierAccountant ledger(
      plan.hierarchy ? *plan.hierarchy
                     : tier::two_tier(std::max<Bytes>(plan.capacity, 1), 1.0));
  if (plan.host_baseline_resident > 0)
    ledger.charge(tier::Tier::kHost, tier::Residency::kWeightShard,
                  plan.host_baseline_resident);
  // (block, tier) -> offloaded activation bytes; a swap-in only releases
  // what some earlier swap-out actually charged.
  std::map<std::pair<int, int>, Bytes> spilled;
  // (block, tier) -> gradient bytes awaiting their update.
  std::map<std::pair<int, int>, Bytes> grad_in_flight;

  Bytes free_mem = plan.capacity;
  Bytes min_free = free_mem;
  Seconds now = 0.0;
  Seconds compute_busy = 0.0;
  int completed = 0;

  // Contiguity tracking for checkpoint capture: started_count many ops
  // have started; next_unstarted is the first op that has not. A "clean
  // instant" is started_count == next_unstarted — the started set is
  // exactly the prefix [0, next_unstarted).
  int started_count = 0;
  int next_unstarted = 0;

  // One op occupies a stream from start to end (start requires
  // stream_free_at <= now), so the in-flight set is at most one op per
  // stream — which makes the next-event scan O(#streams) instead of the
  // O(n) sweep the first engine shipped with.
  std::array<int, kNumStreams> running;
  running.fill(-1);

  if (resume) {
    if (resume->cut < 0 || resume->cut > n ||
        resume->ops.size() != static_cast<std::size_t>(resume->cut))
      throw std::logic_error("engine: checkpoint does not fit this plan");
    std::copy(resume->ops.begin(), resume->ops.end(), state.begin());
    head = resume->head;
    stream_free_at = resume->stream_free_at;
    ledger = resume->ledger;
    spilled = resume->spilled;
    grad_in_flight = resume->grad_in_flight;
    free_mem = resume->free_mem;
    min_free = resume->min_free;
    now = resume->now;
    compute_busy = resume->compute_busy;
    completed = resume->completed;
    started_count = next_unstarted = resume->cut;
    for (int i = 0; i < resume->cut; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      if (state[ii].started && !state[ii].done)
        running[static_cast<std::size_t>(stream_of_op(op_at(i)))] = i;
    }
  }

  // Checkpoint capture bounds: suffix resumes always land in the forward
  // phase (any boundary or policy change first shows up at a forward-phase
  // op), so cuts past the last forward op are dead weight; and capture
  // copies the op-state prefix, so record on a stride that bounds the log
  // to a fixed count regardless of plan depth.
  int record_limit = 0;
  int record_stride = 1;
  int last_recorded = 0;
  if (record) {
    int last_forward = -1;
    for (int i = 0; i < n; ++i)
      if (op_at(i).kind == OpKind::kForward) last_forward = i;
    record_limit = std::min(n - 1, last_forward + 2);
    // Each capture deep-copies the live engine state, so captures — not
    // resumes — are the overhead knob: 8 strided cuts keeps the capture
    // cost a small fraction of one replay while a resume wastes at most
    // one stride of re-simulated ops.
    constexpr int kMaxCheckpoints = 8;
    record_stride = std::max(1, record_limit / kMaxCheckpoints);
    last_recorded = record->empty() ? 0 : record->max_cut();
  }

  while (completed < n) {
    if (record && started_count == next_unstarted &&
        next_unstarted <= record_limit &&
        next_unstarted - last_recorded >= record_stride) {
      EngineCheckpoint ck;
      ck.cut = next_unstarted;
      ck.now = now;
      ck.compute_busy = compute_busy;
      ck.free_mem = free_mem;
      ck.min_free = min_free;
      ck.completed = completed;
      ck.head = head;
      ck.stream_free_at = stream_free_at;
      ck.ops.assign(state.begin(), state.begin() + next_unstarted);
      ck.ledger = ledger;
      ck.spilled = spilled;
      ck.grad_in_flight = grad_in_flight;
      record->add(std::move(ck));
      last_recorded = next_unstarted;
    }

    // Start every op that can start at the current instant. Starting one
    // op can enable another (e.g. memory freed is observed only at
    // completions, but stream heads advance), so loop to fixpoint.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int s = 0; s < kNumStreams; ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (head[si] >= queue[si].size()) continue;
        if (stream_free_at[si] > now) continue;  // stream busy
        const int i = queue[si][head[si]];
        const auto ii = static_cast<std::size_t>(i);
        const Op& op = op_at(i);
        const int d1 = dep1[ii];
        const int d2 = dep2[ii];
        const int d3 = op.after_op;
        if (d1 >= 0 && !state[static_cast<std::size_t>(d1)].done) continue;
        if (d2 >= 0 && !state[static_cast<std::size_t>(d2)].done) continue;
        if (d3 >= 0 && !state[static_cast<std::size_t>(d3)].done) continue;
        const Bytes need = alloc_of(op);
        if (need > free_mem) continue;
        // Ledger admission at op start. Weight-shard swaps read/write the
        // pinned host master copy (already charged as the plan's host
        // baseline), so only activation and gradient payloads reserve
        // tier bytes here.
        const bool charges_tier =
            op.kind == OpKind::kSwapOut &&
            op.residency != tier::Residency::kWeightShard &&
            op_bytes(plan, op) > 0;
        if (charges_tier && !ledger.fits(op.tier, op_bytes(plan, op)))
          continue;  // destination tier full: eviction has nowhere to go
        free_mem -= need;
        min_free = std::min(min_free, free_mem);
        if (charges_tier) {
          const Bytes payload = op_bytes(plan, op);
          ledger.charge(op.tier, op.residency, payload);
          auto& outstanding = op.residency == tier::Residency::kGradient
                                  ? grad_in_flight
                                  : spilled;
          outstanding[{op.block, static_cast<int>(op.tier)}] += payload;
        }
        EngineOpState& st = state[ii];
        st.started = true;
        st.start = now;
        Seconds dur = op_duration(plan, op);
        // Mixed-load NVMe asymmetry (DESIGN.md §16): an IO issued while
        // the opposite direction is in flight pays its penalty factor.
        // stream_free_at is engine state (checkpointed and restored), so
        // the check is deterministic on every replay path; the identity
        // guard keeps the uncontended model bit-exact.
        if (!device_.nvme_contention.identity()) {
          if (s == static_cast<int>(Stream::kNvmeRead) &&
              stream_free_at[static_cast<std::size_t>(Stream::kNvmeWrite)] >
                  now)
            dur *= device_.nvme_contention.mixed_read_penalty;
          else if (s == static_cast<int>(Stream::kNvmeWrite) &&
                   stream_free_at[static_cast<std::size_t>(
                       Stream::kNvmeRead)] > now)
            dur *= device_.nvme_contention.mixed_write_penalty;
        }
        st.end = now + dur;
        stream_free_at[si] = st.end;
        running[si] = i;
        ++head[si];
        ++started_count;
        while (next_unstarted < n &&
               state[static_cast<std::size_t>(next_unstarted)].started)
          ++next_unstarted;
        progressed = true;
      }
    }

    Seconds next_end = std::numeric_limits<Seconds>::infinity();
    if (options_.reference_event_loop) {
      // Seed-engine scan: every op, started-and-not-done filter. Kept as
      // the measurable baseline for the indexed loop below.
      for (int i = 0; i < n; ++i) {
        const auto ii = static_cast<std::size_t>(i);
        if (state[ii].started && !state[ii].done)
          next_end = std::min(next_end, state[ii].end);
      }
    } else {
      for (int s = 0; s < kNumStreams; ++s) {
        const int i = running[static_cast<std::size_t>(s)];
        if (i >= 0)
          next_end = std::min(next_end, state[static_cast<std::size_t>(i)].end);
      }
    }
    if (!std::isfinite(next_end)) {
      std::ostringstream os;
      os << "engine deadlock in plan '" << plan.strategy << "' at t=" << now
         << "s, free=" << free_mem << "B of " << plan.capacity
         << "B; blocked heads:";
      for (int s = 0; s < kNumStreams; ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (head[si] < queue[si].size()) {
          const Op& op = op_at(queue[si][head[si]]);
          os << " [stream " << s << ": " << op_kind_name(op.kind)
             << op.block + 1;
          if (op.kind == OpKind::kSwapOut)
            os << " needs " << op_bytes(plan, op) << "B on "
               << tier::tier_name(op.tier);
          else
            os << " needs " << alloc_of(op) << "B";
          os << "]";
        }
      }
      if (plan.hierarchy) os << "; " << ledger.dump();
      throw InfeasibleError(os.str());
    }
    now = next_end;
    const auto retire = [&](int i) {
      const auto ii = static_cast<std::size_t>(i);
      EngineOpState& st = state[ii];
      st.done = true;
      ++completed;
      const Op& done_op = op_at(i);
      running[static_cast<std::size_t>(stream_of_op(done_op))] = -1;
      free_mem += free_of(done_op);
      if (done_op.kind == OpKind::kSwapIn &&
          done_op.residency != tier::Residency::kWeightShard) {
        // The prefetched copy leaves its offload tier; release whatever
        // the matching swap-out charged (and no more). Weight-shard
        // swap-ins stream the pinned host master copy and release
        // nothing — that copy stays authoritative in DRAM.
        const auto key =
            std::make_pair(done_op.block, static_cast<int>(done_op.tier));
        const auto it = spilled.find(key);
        if (it != spilled.end()) {
          const Bytes back = std::min(it->second, op_bytes(plan, done_op));
          ledger.release(done_op.tier, done_op.residency, back);
          it->second -= back;
        }
      }
      if (done_op.kind == OpKind::kCpuUpdate ||
          done_op.kind == OpKind::kDeviceUpdate) {
        // The update consumed this block's gradients: their host (or
        // NVMe) bytes return to the ledger — the gradient-out/update
        // pairing that keeps multi-iteration pipelines bounded. An
        // explicit op.bytes caps how much one update consumes.
        Bytes budget =
            done_op.bytes > 0 ? done_op.bytes : tier::TierSpec::kUnbounded;
        for (auto& [key, outstanding] : grad_in_flight) {
          if (key.first != done_op.block || outstanding <= 0) continue;
          const Bytes consume = std::min(outstanding, budget);
          ledger.release(static_cast<tier::Tier>(key.second),
                         tier::Residency::kGradient, consume);
          outstanding -= consume;
          budget -= consume;
          if (budget <= 0) break;
        }
      }
      if (stream_of_op(done_op) == Stream::kCompute)
        compute_busy += st.end - st.start;
    };
    if (options_.reference_event_loop) {
      // Seed-engine retire pass: sweep all ops in index order.
      for (int i = 0; i < n; ++i) {
        const auto ii = static_cast<std::size_t>(i);
        if (state[ii].started && !state[ii].done && state[ii].end <= now)
          retire(i);
      }
    } else {
      // At most one op per stream is in flight; gather the ones ending now
      // and retire them in op-index order — the order the full sweep used,
      // kept so the replay stays bit-for-bit identical.
      std::array<int, kNumStreams> ending;
      int num_ending = 0;
      for (int s = 0; s < kNumStreams; ++s) {
        const int i = running[static_cast<std::size_t>(s)];
        if (i >= 0 && state[static_cast<std::size_t>(i)].end <= now)
          ending[static_cast<std::size_t>(num_ending++)] = i;
      }
      std::sort(ending.begin(), ending.begin() + num_ending);
      for (int e = 0; e < num_ending; ++e) retire(ending[static_cast<std::size_t>(e)]);
    }
  }

  // Build records with stall accounting: stall = start minus the end of
  // the previous op on the same stream (time the stream sat idle).
  ExecutionTrace trace;
  trace.records.resize(static_cast<std::size_t>(n));
  std::array<Seconds, kNumStreams> prev_end{};
  std::array<bool, kNumStreams> seen{};
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const Op& op = op_at(i);
    const auto si = static_cast<std::size_t>(stream_of_op(op));
    OpRecord& r = trace.records[ii];
    r.op_index = i;
    r.kind = op.kind;
    r.block = op.block;
    r.iteration = op.iteration;
    r.start = state[ii].start;
    r.end = state[ii].end;
    r.stall = seen[si] ? std::max(0.0, r.start - prev_end[si]) : r.start;
    prev_end[si] = r.end;
    seen[si] = true;
  }
  trace.makespan = now;
  trace.compute_busy = compute_busy;
  trace.peak_resident = (plan.capacity - min_free) + plan.baseline_resident;
  trace.peak_host_resident = ledger.peak(tier::Tier::kHost);
  trace.peak_nvme_resident = ledger.peak(tier::Tier::kNvme);
  return trace;
}

}  // namespace karma::sim
