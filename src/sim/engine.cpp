#include "src/sim/engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/tier/accountant.h"

namespace karma::sim {
namespace {

struct OpState {
  bool started = false;
  bool done = false;
  Seconds start = 0.0;
  Seconds end = 0.0;
};

}  // namespace

Bytes Engine::op_bytes(const Plan& plan, const Op& op) const {
  if (op.bytes != Op::kDefault) return op.bytes;
  return plan.costs[static_cast<std::size_t>(op.block)].act_bytes;
}

Seconds Engine::op_duration(const Plan& plan, const Op& op) const {
  if (op.duration >= 0.0) return op.duration;
  const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  switch (op.kind) {
    case OpKind::kForward:
    case OpKind::kRecompute:
      return c.fwd_time;
    case OpKind::kBackward:
      return c.bwd_time;
    case OpKind::kSwapIn:
      return device_.read_from_tier_time(op.tier, op_bytes(plan, op));
    case OpKind::kSwapOut:
      return device_.write_to_tier_time(op.tier, op_bytes(plan, op));
    case OpKind::kAllReduce:
    case OpKind::kCpuUpdate:
    case OpKind::kDeviceUpdate:
      throw std::logic_error(
          "engine: missing duration for AllReduce/CpuUpdate/DeviceUpdate");
  }
  throw std::logic_error("engine: unhandled op kind");
}

ExecutionTrace Engine::run(const Plan& plan) const {
  validate_plan(plan);
  const int n = static_cast<int>(plan.ops.size());
  const auto op_at = [&](int i) -> const Op& {
    return plan.ops[static_cast<std::size_t>(i)];
  };

  // Dependency chains:
  //  dep1[i]: latest earlier op on the same block (producer/consumer).
  //  dep2[i]: for Recompute ops, the latest earlier op touching the
  //           predecessor block (its output is the recompute's input).
  std::vector<int> dep1(static_cast<std::size_t>(n), -1);
  std::vector<int> dep2(static_cast<std::size_t>(n), -1);
  {
    std::vector<int> last(plan.blocks.size(), -1);
    for (int i = 0; i < n; ++i) {
      const Op& op = op_at(i);
      const auto b = static_cast<std::size_t>(op.block);
      dep1[static_cast<std::size_t>(i)] = last[b];
      if (op.kind == OpKind::kRecompute && op.block > 0)
        dep2[static_cast<std::size_t>(i)] = last[b - 1];
      last[b] = i;
    }
  }

  // Stream FIFO queues (tier-aware: NVMe swaps bind to the NVMe streams).
  std::array<std::vector<int>, kNumStreams> queue;
  for (int i = 0; i < n; ++i)
    queue[static_cast<std::size_t>(stream_of_op(op_at(i)))].push_back(i);
  std::array<std::size_t, kNumStreams> head{};
  std::array<Seconds, kNumStreams> stream_free_at{};

  std::vector<OpState> state(static_cast<std::size_t>(n));

  const auto resolve = [](Bytes v, Bytes fallback) {
    return v == Op::kDefault ? fallback : v;
  };
  const auto alloc_of = [&](const Op& op) -> Bytes {
    const Bytes act = op_bytes(plan, op);
    const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
    switch (op.kind) {
      case OpKind::kForward:
        return resolve(op.alloc, op.retains ? act : c.boundary_bytes);
      case OpKind::kRecompute:
      case OpKind::kBackward:
      case OpKind::kSwapIn:
        return resolve(op.alloc, act);
      default:
        return resolve(op.alloc, 0);
    }
  };
  const auto free_of = [&](const Op& op) -> Bytes {
    const Bytes act = op_bytes(plan, op);
    switch (op.kind) {
      case OpKind::kBackward:
        // Transient gradient wavefront + the consumed activations.
        return resolve(op.free, 2 * act);
      case OpKind::kSwapOut:
        return resolve(op.free, act);
      default:
        return resolve(op.free, 0);
    }
  };

  // Offload-tier ledger, one class per payload lifetime (DESIGN.md §9):
  // an activation swap-out reserves bytes on its destination tier when it
  // starts (the payload needs the space end-to-end) and the matching
  // swap-in returns them on completion; a gradient-out's bytes live until
  // the block's CPU/device update consumes them; weight-shard traffic
  // reads/writes the pinned host master copy, which is charged once below
  // as the plan's host baseline and never moves. Plans without a hierarchy
  // keep the seed's unbounded-host model; the dummy bandwidth is never
  // read (durations come from the DeviceSpec).
  tier::TierAccountant ledger(
      plan.hierarchy ? *plan.hierarchy
                     : tier::two_tier(std::max<Bytes>(plan.capacity, 1), 1.0));
  if (plan.host_baseline_resident > 0)
    ledger.charge(tier::Tier::kHost, tier::Residency::kWeightShard,
                  plan.host_baseline_resident);
  // (block, tier) -> offloaded activation bytes; a swap-in only releases
  // what some earlier swap-out actually charged.
  std::map<std::pair<int, int>, Bytes> spilled;
  // (block, tier) -> gradient bytes awaiting their update.
  std::map<std::pair<int, int>, Bytes> grad_in_flight;

  Bytes free_mem = plan.capacity;
  Bytes min_free = free_mem;
  Seconds now = 0.0;
  Seconds compute_busy = 0.0;
  int completed = 0;

  while (completed < n) {
    // Start every op that can start at the current instant. Starting one
    // op can enable another (e.g. memory freed is observed only at
    // completions, but stream heads advance), so loop to fixpoint.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (int s = 0; s < kNumStreams; ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (head[si] >= queue[si].size()) continue;
        if (stream_free_at[si] > now) continue;  // stream busy
        const int i = queue[si][head[si]];
        const auto ii = static_cast<std::size_t>(i);
        const Op& op = op_at(i);
        const int d1 = dep1[ii];
        const int d2 = dep2[ii];
        const int d3 = op.after_op;
        if (d1 >= 0 && !state[static_cast<std::size_t>(d1)].done) continue;
        if (d2 >= 0 && !state[static_cast<std::size_t>(d2)].done) continue;
        if (d3 >= 0 && !state[static_cast<std::size_t>(d3)].done) continue;
        const Bytes need = alloc_of(op);
        if (need > free_mem) continue;
        // Ledger admission at op start. Weight-shard swaps read/write the
        // pinned host master copy (already charged as the plan's host
        // baseline), so only activation and gradient payloads reserve
        // tier bytes here.
        const bool charges_tier =
            op.kind == OpKind::kSwapOut &&
            op.residency != tier::Residency::kWeightShard &&
            op_bytes(plan, op) > 0;
        if (charges_tier && !ledger.fits(op.tier, op_bytes(plan, op)))
          continue;  // destination tier full: eviction has nowhere to go
        free_mem -= need;
        min_free = std::min(min_free, free_mem);
        if (charges_tier) {
          const Bytes payload = op_bytes(plan, op);
          ledger.charge(op.tier, op.residency, payload);
          auto& outstanding = op.residency == tier::Residency::kGradient
                                  ? grad_in_flight
                                  : spilled;
          outstanding[{op.block, static_cast<int>(op.tier)}] += payload;
        }
        OpState& st = state[ii];
        st.started = true;
        st.start = now;
        st.end = now + op_duration(plan, op);
        stream_free_at[si] = st.end;
        ++head[si];
        progressed = true;
      }
    }

    Seconds next_end = std::numeric_limits<Seconds>::infinity();
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      if (state[ii].started && !state[ii].done)
        next_end = std::min(next_end, state[ii].end);
    }
    if (!std::isfinite(next_end)) {
      std::ostringstream os;
      os << "engine deadlock in plan '" << plan.strategy << "' at t=" << now
         << "s, free=" << free_mem << "B of " << plan.capacity
         << "B; blocked heads:";
      for (int s = 0; s < kNumStreams; ++s) {
        const auto si = static_cast<std::size_t>(s);
        if (head[si] < queue[si].size()) {
          const Op& op = op_at(queue[si][head[si]]);
          os << " [stream " << s << ": " << op_kind_name(op.kind)
             << op.block + 1;
          if (op.kind == OpKind::kSwapOut)
            os << " needs " << op_bytes(plan, op) << "B on "
               << tier::tier_name(op.tier);
          else
            os << " needs " << alloc_of(op) << "B";
          os << "]";
        }
      }
      if (plan.hierarchy) os << "; " << ledger.dump();
      throw std::runtime_error(os.str());
    }
    now = next_end;
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      OpState& st = state[ii];
      if (st.started && !st.done && st.end <= now) {
        st.done = true;
        ++completed;
        const Op& done_op = op_at(i);
        free_mem += free_of(done_op);
        if (done_op.kind == OpKind::kSwapIn &&
            done_op.residency != tier::Residency::kWeightShard) {
          // The prefetched copy leaves its offload tier; release whatever
          // the matching swap-out charged (and no more). Weight-shard
          // swap-ins stream the pinned host master copy and release
          // nothing — that copy stays authoritative in DRAM.
          const auto key =
              std::make_pair(done_op.block, static_cast<int>(done_op.tier));
          const auto it = spilled.find(key);
          if (it != spilled.end()) {
            const Bytes back = std::min(it->second, op_bytes(plan, done_op));
            ledger.release(done_op.tier, done_op.residency, back);
            it->second -= back;
          }
        }
        if (done_op.kind == OpKind::kCpuUpdate ||
            done_op.kind == OpKind::kDeviceUpdate) {
          // The update consumed this block's gradients: their host (or
          // NVMe) bytes return to the ledger — the gradient-out/update
          // pairing that keeps multi-iteration pipelines bounded. An
          // explicit op.bytes caps how much one update consumes.
          Bytes budget =
              done_op.bytes > 0 ? done_op.bytes : tier::TierSpec::kUnbounded;
          for (auto& [key, outstanding] : grad_in_flight) {
            if (key.first != done_op.block || outstanding <= 0) continue;
            const Bytes consume = std::min(outstanding, budget);
            ledger.release(static_cast<tier::Tier>(key.second),
                           tier::Residency::kGradient, consume);
            outstanding -= consume;
            budget -= consume;
            if (budget <= 0) break;
          }
        }
        if (stream_of_op(done_op) == Stream::kCompute)
          compute_busy += st.end - st.start;
      }
    }
  }

  // Build records with stall accounting: stall = start minus the end of
  // the previous op on the same stream (time the stream sat idle).
  ExecutionTrace trace;
  trace.records.resize(static_cast<std::size_t>(n));
  std::array<Seconds, kNumStreams> prev_end{};
  std::array<bool, kNumStreams> seen{};
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const Op& op = op_at(i);
    const auto si = static_cast<std::size_t>(stream_of_op(op));
    OpRecord& r = trace.records[ii];
    r.op_index = i;
    r.kind = op.kind;
    r.block = op.block;
    r.iteration = op.iteration;
    r.start = state[ii].start;
    r.end = state[ii].end;
    r.stall = seen[si] ? std::max(0.0, r.start - prev_end[si]) : r.start;
    prev_end[si] = r.end;
    seen[si] = true;
  }
  trace.makespan = now;
  trace.compute_busy = compute_busy;
  trace.peak_resident = (plan.capacity - min_free) + plan.baseline_resident;
  trace.peak_host_resident = ledger.peak(tier::Tier::kHost);
  trace.peak_nvme_resident = ledger.peak(tier::Tier::kNvme);
  return trace;
}

}  // namespace karma::sim
