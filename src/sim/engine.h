// Discrete-event engine with CUDA-stream semantics.
//
// Ops are issued in plan order onto five streams (compute, H2D DMA, D2H
// DMA, NIC, host CPU). An op starts when
//   (1) it is at the head of its stream's FIFO queue,
//   (2) the most recently issued earlier op touching the same block has
//       completed (per-block producer/consumer chain),
//   (3) for ops that allocate device memory (forward/recompute/backward
//       transients, swap-ins), enough capacity is free.
// Completion events free memory (backward consumes activations, swap-out
// evicts). The engine is single-threaded and fully deterministic: ties are
// broken by stream id, then op index.
//
// This mirrors how KARMA's generated script behaves on real hardware
// (Sec. III-H): prefetches are cudaMemPrefetchAsync on a side stream,
// compute waits on events, and stalls appear exactly when a dependency or
// the capacity limit blocks the compute queue.
//
// Checkpointed replay (DESIGN.md §14): the planner's annealer perturbs a
// suffix of the schedule per move, so the engine can snapshot its full
// state at "clean instants" — moments when the set of started ops is
// exactly the contiguous op prefix [0, c) — and later resume a *different*
// plan from such a snapshot, provided the two plans' first c ops (and the
// global preconditions: capacity, baselines, hierarchy, block count) are
// identical. Clean instants are reproducible across plans sharing the
// prefix: the event evolution is a deterministic function of the op list,
// and at a clean instant no op >= c has influenced anything yet. A resumed
// run is therefore bit-identical to a from-scratch replay (property-tested
// in test_search_incremental.cpp).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/plan.h"
#include "src/sim/trace.h"
#include "src/tier/accountant.h"

namespace karma::sim {

/// Per-op progress inside one replay; the unit a checkpoint stores per
/// prefix op.
struct EngineOpState {
  bool started = false;
  bool done = false;
  Seconds start = 0.0;
  Seconds end = 0.0;
};

/// Full engine state at a clean instant: every op < cut has started (some
/// may still be in flight), no op >= cut has. Restoring this and replaying
/// ops [cut, n) reproduces the from-scratch replay exactly for any plan
/// whose first `cut` ops match the plan this was captured from.
struct EngineCheckpoint {
  int cut = 0;                       ///< ops [0, cut) started, rest not
  Seconds now = 0.0;
  Seconds compute_busy = 0.0;
  Bytes free_mem = 0;
  Bytes min_free = 0;
  int completed = 0;
  std::array<std::size_t, kNumStreams> head{};
  std::array<Seconds, kNumStreams> stream_free_at{};
  std::vector<EngineOpState> ops;    ///< size == cut
  tier::TierAccountant ledger;
  std::map<std::pair<int, int>, Bytes> spilled;
  std::map<std::pair<int, int>, Bytes> grad_in_flight;
};

/// Ascending-by-cut collection of checkpoints from one replay. The engine
/// appends (strided, forward-phase only — suffix resumes always land in
/// the forward phase, see DESIGN.md §14); the planner seeds a resumed
/// run's log with the baseline's still-valid prefix so reuse compounds.
/// Checkpoints are immutable once recorded and held by shared_ptr, so
/// seeding a new log from a baseline copies pointers, not engine state —
/// the seed cost is O(#checkpoints), independent of plan depth.
class CheckpointLog {
 public:
  void add(EngineCheckpoint ck) {
    points_.push_back(std::make_shared<const EngineCheckpoint>(std::move(ck)));
  }

  /// Deepest checkpoint usable for a resume at op index `cut` (largest
  /// recorded cut <= cut); nullptr when none qualifies.
  const EngineCheckpoint* best_at_or_below(int cut) const {
    const EngineCheckpoint* best = nullptr;
    for (const auto& p : points_) {
      if (p->cut > cut) break;
      best = p.get();
    }
    return best;
  }

  /// Shares the checkpoints of `other` with cut <= `cut` into this log
  /// (which must be empty) — the seed for a resumed run's own recording.
  void seed_from(const CheckpointLog& other, int cut) {
    points_.clear();
    for (const auto& p : other.points_) {
      if (p->cut > cut) break;
      points_.push_back(p);
    }
  }

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  int max_cut() const { return points_.empty() ? 0 : points_.back()->cut; }
  const std::vector<std::shared_ptr<const EngineCheckpoint>>& points() const {
    return points_;
  }

 private:
  std::vector<std::shared_ptr<const EngineCheckpoint>> points_;
};

/// Longest prefix of identical ops between two plans whose global
/// preconditions (capacity, baselines, hierarchy, block count) also match;
/// 0 when they differ. Two ops are identical when every scheduling-
/// relevant field matches AND their blocks' costs match (durations and
/// byte defaults derive from costs). This is the resume bound for
/// checkpointed replay.
int common_op_prefix(const Plan& a, const Plan& b);

/// Replay knobs that do not change results. `reference_event_loop`
/// restores the seed engine's O(n)-sweep next-event scan and retire pass
/// (bit-identical outcomes, property-tested) — it exists so benchmarks
/// can measure the indexed event loop against the exact code path earlier
/// revisions shipped, from one binary.
struct EngineOptions {
  bool reference_event_loop = false;
};

class Engine {
 public:
  explicit Engine(DeviceSpec device, EngineOptions options = {})
      : device_(device), options_(options) {}

  /// Replays `plan` and returns the trace. Throws karma::InfeasibleError
  /// with a state dump if the plan deadlocks (e.g. a swap-in that can
  /// never fit) and std::logic_error if the plan fails validation.
  ExecutionTrace run(const Plan& plan) const {
    return run(plan, nullptr, nullptr);
  }

  /// Checkpointed replay. `resume` (optional) restores a snapshot taken
  /// from a plan sharing this plan's first resume->cut ops — the caller
  /// owns that contract; common_op_prefix() computes the bound. `record`
  /// (optional) collects this replay's own checkpoints: only cuts deeper
  /// than record->max_cut() are appended, so a log seeded with the
  /// baseline's prefix composes. Passing both nullptrs is the plain replay
  /// above; results are bit-identical in every combination.
  ExecutionTrace run(const Plan& plan, const EngineCheckpoint* resume,
                     CheckpointLog* record) const;

  const DeviceSpec& device() const { return device_; }

 private:
  Seconds op_duration(const Plan& plan, const Op& op) const;
  Bytes op_bytes(const Plan& plan, const Op& op) const;

  DeviceSpec device_;
  EngineOptions options_;
};

}  // namespace karma::sim
