// Discrete-event engine with CUDA-stream semantics.
//
// Ops are issued in plan order onto five streams (compute, H2D DMA, D2H
// DMA, NIC, host CPU). An op starts when
//   (1) it is at the head of its stream's FIFO queue,
//   (2) the most recently issued earlier op touching the same block has
//       completed (per-block producer/consumer chain), and
//   (3) for ops that allocate device memory (forward/recompute/backward
//       transients, swap-ins), enough capacity is free.
// Completion events free memory (backward consumes activations, swap-out
// evicts). The engine is single-threaded and fully deterministic: ties are
// broken by stream id, then op index.
//
// This mirrors how KARMA's generated script behaves on real hardware
// (Sec. III-H): prefetches are cudaMemPrefetchAsync on a side stream,
// compute waits on events, and stalls appear exactly when a dependency or
// the capacity limit blocks the compute queue.
#pragma once

#include "src/sim/plan.h"
#include "src/sim/trace.h"

namespace karma::sim {

class Engine {
 public:
  explicit Engine(DeviceSpec device) : device_(device) {}

  /// Replays `plan` and returns the trace. Throws std::runtime_error with
  /// a state dump if the plan deadlocks (e.g. a swap-in that can never
  /// fit) and std::logic_error if the plan fails validation.
  ExecutionTrace run(const Plan& plan) const;

  const DeviceSpec& device() const { return device_; }

 private:
  Seconds op_duration(const Plan& plan, const Op& op) const;
  Bytes op_bytes(const Plan& plan, const Op& op) const;

  DeviceSpec device_;
};

}  // namespace karma::sim
