#include "src/sim/trace.h"

namespace karma::sim {

Seconds ExecutionTrace::compute_stall() const {
  Seconds total = 0.0;
  for (const auto& r : records)
    if (stream_of(r.kind) == Stream::kCompute) total += r.stall;
  return total;
}

std::vector<Seconds> ExecutionTrace::backward_profile(int num_blocks) const {
  std::vector<Seconds> profile(static_cast<std::size_t>(num_blocks), 0.0);
  for (const auto& r : records) {
    if (r.kind != OpKind::kBackward && r.kind != OpKind::kRecompute) continue;
    if (r.iteration != 0) continue;
    // Recompute time is charged to the block being rematerialized, which
    // is how the paper's Fig. 6 stacks the overhead.
    profile[static_cast<std::size_t>(r.block)] += r.duration() + r.stall;
  }
  return profile;
}

Seconds ExecutionTrace::backward_stall() const {
  Seconds total = 0.0;
  bool in_backward = false;
  for (const auto& r : records) {
    if (r.kind == OpKind::kBackward) in_backward = true;
    if (in_backward && stream_of(r.kind) == Stream::kCompute)
      total += r.stall;
  }
  return total;
}

}  // namespace karma::sim
