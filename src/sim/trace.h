// Execution traces: what the engine records while replaying a plan, and
// the derived metrics the experiments report (occupancy Eq. 1, per-layer
// stall profiles for Fig. 6, samples/s for Fig. 5).
#pragma once

#include <vector>

#include "src/sim/plan.h"
#include "src/util/units.h"

namespace karma::sim {

struct OpRecord {
  int op_index = -1;
  OpKind kind = OpKind::kForward;
  int block = 0;
  int iteration = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
  /// Time this op spent waiting after its stream predecessor finished
  /// (dependency or memory stalls); 0 when it launched back-to-back.
  Seconds stall = 0.0;

  Seconds duration() const { return end - start; }
};

struct ExecutionTrace {
  std::vector<OpRecord> records;  ///< in op-issue order
  Seconds makespan = 0.0;
  Seconds compute_busy = 0.0;     ///< total busy time on the compute stream
  Bytes peak_resident = 0;        ///< high-water mark of device memory use
  /// High-water mark of host-tier residency across all classes
  /// (DESIGN.md §9): activation spill + in-flight gradients + the pinned
  /// weight-shard baseline of distributed plans. Seed single-GPU plans
  /// (no gradients, no pinned shards) report pure spill as before.
  Bytes peak_host_resident = 0;
  Bytes peak_nvme_resident = 0;   ///< high-water mark of NVMe-tier spill

  /// Device occupancy per paper Eq. (1): busy / (busy + idle) over the
  /// span of the whole run.
  double occupancy() const {
    return makespan > 0.0 ? compute_busy / makespan : 1.0;
  }

  /// Total stall on the compute stream.
  Seconds compute_stall() const;

  /// Per-block time of the backward phase including preceding stalls,
  /// ordered back-to-front — the series plotted in Fig. 6.
  std::vector<Seconds> backward_profile(int num_blocks) const;

  /// Sum of stalls over backward-phase compute ops only.
  Seconds backward_stall() const;
};

}  // namespace karma::sim
