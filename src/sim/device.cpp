#include "src/sim/device.h"

#include <algorithm>
#include <stdexcept>

namespace karma::sim {

double DeviceSpec::efficiency(graph::LayerKind kind) const {
  using graph::LayerKind;
  switch (kind) {
    case LayerKind::kConv2d:
      return 0.55;  // cuDNN implicit-GEMM convs on V100 (fp32)
    case LayerKind::kFullyConnected:
    case LayerKind::kSelfAttention:
    case LayerKind::kLSTM:
      return 0.60;  // large GEMMs
    case LayerKind::kBatchNorm:
    case LayerKind::kLayerNorm:
    case LayerKind::kSoftmax:
    case LayerKind::kGeLU:
    case LayerKind::kReLU:
    case LayerKind::kDropout:
    case LayerKind::kAdd:
    case LayerKind::kConcat:
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
    case LayerKind::kEmbedding:
      return 0.15;  // bandwidth-bound; roofline term dominates anyway
    case LayerKind::kInput:
    case LayerKind::kReshape:
      return 1.0;
  }
  return 0.5;
}

Seconds DeviceSpec::kernel_time(graph::LayerKind kind, Flops flops,
                                Bytes bytes) const {
  if (flops <= 0.0 && bytes <= 0) return 0.0;
  const Seconds compute =
      peak_flops > 0 ? flops / (efficiency(kind) * peak_flops) : 0.0;
  const Seconds memory =
      device_mem_bw > 0 ? static_cast<double>(bytes) / device_mem_bw : 0.0;
  // 2 us launch overhead per kernel keeps tiny layers from being free.
  return scale.compute * (std::max(compute, memory) + 2e-6);
}

Seconds DeviceSpec::h2d_time(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return scale.h2d * (swap_latency + static_cast<double>(bytes) / h2d_bw);
}

Seconds DeviceSpec::d2h_time(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return scale.d2h * (swap_latency + static_cast<double>(bytes) / d2h_bw);
}

Seconds DeviceSpec::nvme_read_time(Bytes bytes) const {
  if (!has_nvme() || nvme_read_bw <= 0.0)
    throw std::logic_error("DeviceSpec: '" + name + "' has no NVMe tier");
  if (bytes <= 0) return 0.0;
  // Queue-depth derate (DESIGN.md §16): each submission queues behind
  // queue_depth competing IOs on average. bw / (1 + 0) == bw, so the
  // identity contention model reproduces the seed bits exactly.
  const Bandwidth bw = nvme_read_bw / (1.0 + nvme_contention.queue_depth);
  return scale.nvme_read * (nvme_latency + static_cast<double>(bytes) / bw);
}

Seconds DeviceSpec::nvme_write_time(Bytes bytes) const {
  if (!has_nvme() || nvme_write_bw <= 0.0)
    throw std::logic_error("DeviceSpec: '" + name + "' has no NVMe tier");
  if (bytes <= 0) return 0.0;
  const Bandwidth bw = nvme_write_bw / (1.0 + nvme_contention.queue_depth);
  return scale.nvme_write * (nvme_latency + static_cast<double>(bytes) / bw);
}

Seconds DeviceSpec::read_from_tier_time(tier::Tier t, Bytes bytes) const {
  switch (t) {
    case tier::Tier::kHost: return h2d_time(bytes);
    case tier::Tier::kNvme: {
      // Storage swap-ins stream NVMe -> host -> device; the two legs
      // pipeline through a host bounce buffer so the slower one bounds
      // throughput, and each hop pays its submission latency once.
      if (bytes <= 0) return 0.0;
      const Seconds nvme_leg = nvme_read_time(bytes) - nvme_latency;
      const Seconds pcie_leg =
          scale.h2d * (static_cast<double>(bytes) / h2d_bw);
      return nvme_latency + swap_latency + std::max(nvme_leg, pcie_leg);
    }
    case tier::Tier::kDevice: break;
  }
  throw std::logic_error("DeviceSpec: cannot read from tier 'device'");
}

Seconds DeviceSpec::write_to_tier_time(tier::Tier t, Bytes bytes) const {
  switch (t) {
    case tier::Tier::kHost: return d2h_time(bytes);
    case tier::Tier::kNvme: {
      if (bytes <= 0) return 0.0;
      const Seconds nvme_leg = nvme_write_time(bytes) - nvme_latency;
      const Seconds pcie_leg =
          scale.d2h * (static_cast<double>(bytes) / d2h_bw);
      return nvme_latency + swap_latency + std::max(nvme_leg, pcie_leg);
    }
    case tier::Tier::kDevice: break;
  }
  throw std::logic_error("DeviceSpec: cannot write to tier 'device'");
}

Seconds DeviceSpec::cpu_update_time(Bytes param_bytes) const {
  if (param_bytes <= 0) return 0.0;
  // SGD update streams params + grads in, params out: ~3x traffic.
  return scale.cpu_update *
         (3.0 * static_cast<double>(param_bytes) / host_mem_bw);
}

DeviceSpec v100_abci() {
  DeviceSpec d;
  d.name = "V100-SXM2-16GiB (ABCI)";
  d.memory_capacity = 16_GiB;
  d.peak_flops = 14.7_TFLOPS;
  d.device_mem_bw = 900_GBps;
  d.h2d_bw = 16_GBps;  // PCIe gen3 x16, per direction
  d.d2h_bw = 16_GBps;
  d.swap_latency = 10e-6;
  d.cpu_flops = 1.5_TFLOPS;  // 2x Xeon Gold 6148, fp32 AVX-512
  d.host_mem_bw = 100_GBps;  // 6-channel DDR4-2666 x2 sockets, measured-ish
  return d;
}

DeviceSpec v100_nvlink_host() {
  DeviceSpec d = v100_abci();
  d.name = "V100-16GiB + NVLink host link";
  d.h2d_bw = 50_GBps;
  d.d2h_bw = 50_GBps;
  return d;
}

DeviceSpec test_device() {
  DeviceSpec d;
  d.name = "test-1MiB";
  d.memory_capacity = 1_MiB;
  d.peak_flops = 1_GFLOPS;
  d.device_mem_bw = 1_GBps;
  d.h2d_bw = 100e6;  // 100 MB/s
  d.d2h_bw = 100e6;
  d.swap_latency = 0.0;
  d.cpu_flops = 100e6;
  d.host_mem_bw = 500e6;
  return d;
}

DeviceSpec v100_abci_nvme() {
  DeviceSpec d = v100_abci();
  d.name = "V100-SXM2-16GiB (ABCI) + local NVMe";
  d.host_capacity = 384_GiB;
  d.nvme_capacity = 1600000000000;  // 1.6 TB (SI, as sold)
  d.nvme_read_bw = 3.2e9;           // DC P4600-class sequential read
  d.nvme_write_bw = 1.3e9;          //                        ... write
  d.nvme_latency = 100e-6;
  return d;
}

DeviceSpec a100_fleet_node() {
  DeviceSpec d;
  d.name = "A100-SXM4-40GiB + local NVMe";
  d.memory_capacity = 40_GiB;
  d.peak_flops = 19.5_TFLOPS;  // fp32 (non-TF32), matching the V100 basis
  d.device_mem_bw = 1555_GBps;  // HBM2e
  d.h2d_bw = 32_GBps;           // PCIe gen4 x16, per direction
  d.d2h_bw = 32_GBps;
  d.swap_latency = 10e-6;
  d.cpu_flops = 3_TFLOPS;    // 2x 64-core EPYC-class hosts
  d.host_mem_bw = 200_GBps;  // 8-channel DDR4-3200 x2 sockets
  d.host_capacity = 512_GiB;
  d.nvme_capacity = 3200000000000;  // 3.2 TB (SI, as sold)
  d.nvme_read_bw = 6.8e9;           // gen4 NVMe sequential read
  d.nvme_write_bw = 4.0e9;          //                   ... write
  d.nvme_latency = 80e-6;
  return d;
}

DeviceSpec test_device_tiered() {
  DeviceSpec d = test_device();
  d.name = "test-1MiB+tiers";
  d.host_capacity = 4_KiB;
  d.nvme_capacity = 64_KiB;
  d.nvme_read_bw = 50e6;   // half the interconnect speed
  d.nvme_write_bw = 50e6;
  d.nvme_latency = 0.0;
  return d;
}

tier::StorageHierarchy hierarchy_of(const DeviceSpec& device) {
  using tier::Tier;
  using tier::TierSpec;
  TierSpec dev;
  dev.tier = Tier::kDevice;
  dev.capacity = device.memory_capacity;

  TierSpec host;
  host.tier = Tier::kHost;
  host.capacity =
      device.host_capacity > 0 ? device.host_capacity : TierSpec::kUnbounded;
  host.read_bw = device.h2d_bw;
  host.write_bw = device.d2h_bw;
  host.latency = device.swap_latency;
  if (!device.has_nvme()) return tier::StorageHierarchy({dev, host});

  TierSpec nvme;
  nvme.tier = Tier::kNvme;
  nvme.capacity = device.nvme_capacity;
  nvme.read_bw = device.nvme_read_bw;
  nvme.write_bw = device.nvme_write_bw;
  nvme.latency = device.nvme_latency;
  return tier::StorageHierarchy({dev, host, nvme});
}

}  // namespace karma::sim
