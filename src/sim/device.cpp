#include "src/sim/device.h"

#include <algorithm>

namespace karma::sim {

double DeviceSpec::efficiency(graph::LayerKind kind) const {
  using graph::LayerKind;
  switch (kind) {
    case LayerKind::kConv2d:
      return 0.55;  // cuDNN implicit-GEMM convs on V100 (fp32)
    case LayerKind::kFullyConnected:
    case LayerKind::kSelfAttention:
    case LayerKind::kLSTM:
      return 0.60;  // large GEMMs
    case LayerKind::kBatchNorm:
    case LayerKind::kLayerNorm:
    case LayerKind::kSoftmax:
    case LayerKind::kGeLU:
    case LayerKind::kReLU:
    case LayerKind::kDropout:
    case LayerKind::kAdd:
    case LayerKind::kConcat:
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
    case LayerKind::kEmbedding:
      return 0.15;  // bandwidth-bound; roofline term dominates anyway
    case LayerKind::kInput:
    case LayerKind::kReshape:
      return 1.0;
  }
  return 0.5;
}

Seconds DeviceSpec::kernel_time(graph::LayerKind kind, Flops flops,
                                Bytes bytes) const {
  if (flops <= 0.0 && bytes <= 0) return 0.0;
  const Seconds compute =
      peak_flops > 0 ? flops / (efficiency(kind) * peak_flops) : 0.0;
  const Seconds memory =
      device_mem_bw > 0 ? static_cast<double>(bytes) / device_mem_bw : 0.0;
  // 2 us launch overhead per kernel keeps tiny layers from being free.
  return std::max(compute, memory) + 2e-6;
}

Seconds DeviceSpec::h2d_time(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return swap_latency + static_cast<double>(bytes) / h2d_bw;
}

Seconds DeviceSpec::d2h_time(Bytes bytes) const {
  if (bytes <= 0) return 0.0;
  return swap_latency + static_cast<double>(bytes) / d2h_bw;
}

Seconds DeviceSpec::cpu_update_time(Bytes param_bytes) const {
  if (param_bytes <= 0) return 0.0;
  // SGD update streams params + grads in, params out: ~3x traffic.
  return 3.0 * static_cast<double>(param_bytes) / host_mem_bw;
}

DeviceSpec v100_abci() {
  DeviceSpec d;
  d.name = "V100-SXM2-16GiB (ABCI)";
  d.memory_capacity = 16_GiB;
  d.peak_flops = 14.7_TFLOPS;
  d.device_mem_bw = 900_GBps;
  d.h2d_bw = 16_GBps;  // PCIe gen3 x16, per direction
  d.d2h_bw = 16_GBps;
  d.swap_latency = 10e-6;
  d.cpu_flops = 1.5_TFLOPS;  // 2x Xeon Gold 6148, fp32 AVX-512
  d.host_mem_bw = 100_GBps;  // 6-channel DDR4-2666 x2 sockets, measured-ish
  return d;
}

DeviceSpec v100_nvlink_host() {
  DeviceSpec d = v100_abci();
  d.name = "V100-16GiB + NVLink host link";
  d.h2d_bw = 50_GBps;
  d.d2h_bw = 50_GBps;
  return d;
}

DeviceSpec test_device() {
  DeviceSpec d;
  d.name = "test-1MiB";
  d.memory_capacity = 1_MiB;
  d.peak_flops = 1_GFLOPS;
  d.device_mem_bw = 1_GBps;
  d.h2d_bw = 100e6;  // 100 MB/s
  d.d2h_bw = 100e6;
  d.swap_latency = 0.0;
  d.cpu_flops = 100e6;
  d.host_mem_bw = 500e6;
  return d;
}

}  // namespace karma::sim
