#include "src/sim/trace_check.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

namespace karma::sim {
namespace {

constexpr Seconds kEps = 1e-9;

Bytes resolve(Bytes v, Bytes fallback) {
  return v == Op::kDefault ? fallback : v;
}

Bytes alloc_of(const Plan& plan, const Op& op) {
  const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  const Bytes act = resolve(op.bytes, c.act_bytes);
  switch (op.kind) {
    case OpKind::kForward:
      return resolve(op.alloc, op.retains ? act : c.boundary_bytes);
    case OpKind::kRecompute:
    case OpKind::kBackward:
    case OpKind::kSwapIn:
      return resolve(op.alloc, act);
    default:
      return resolve(op.alloc, 0);
  }
}

Bytes free_of(const Plan& plan, const Op& op) {
  const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  const Bytes act = resolve(op.bytes, c.act_bytes);
  switch (op.kind) {
    case OpKind::kBackward:
      return resolve(op.free, 2 * act);
    case OpKind::kSwapOut:
      return resolve(op.free, act);
    default:
      return resolve(op.free, 0);
  }
}

}  // namespace

std::vector<std::string> check_trace_invariants(const Plan& plan,
                                                const ExecutionTrace& trace) {
  std::vector<std::string> violations;
  const auto fail = [&](const std::string& what) {
    violations.push_back(what);
  };
  const int n = static_cast<int>(plan.ops.size());
  if (trace.records.size() != plan.ops.size()) {
    fail("record count != op count");
    return violations;
  }

  // 1. Stream exclusivity + issue order.
  std::array<Seconds, kNumStreams> stream_prev_end{};
  std::array<bool, kNumStreams> seen{};
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const OpRecord& r = trace.records[ii];
    const auto s = static_cast<std::size_t>(stream_of_op(plan.ops[ii]));
    if (r.end + kEps < r.start) {
      std::ostringstream os;
      os << "op " << i << " ends before it starts";
      fail(os.str());
    }
    if (seen[s] && r.start + kEps < stream_prev_end[s]) {
      std::ostringstream os;
      os << "op " << i << " overlaps its stream predecessor (start "
         << r.start << " < prev end " << stream_prev_end[s] << ")";
      fail(os.str());
    }
    stream_prev_end[s] = r.end;
    seen[s] = true;
  }

  // 2-4. Dependency chains.
  std::vector<int> last_for_block(plan.blocks.size(), -1);
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const Op& op = plan.ops[ii];
    const OpRecord& r = trace.records[ii];
    const auto b = static_cast<std::size_t>(op.block);
    const auto check_after = [&](int j, const char* why) {
      if (j < 0) return;
      const OpRecord& dep = trace.records[static_cast<std::size_t>(j)];
      if (r.start + kEps < dep.end) {
        std::ostringstream os;
        os << "op " << i << " starts before " << why << " op " << j
           << " completes";
        fail(os.str());
      }
    };
    check_after(last_for_block[b], "same-block");
    if (op.kind == OpKind::kRecompute && op.block > 0)
      check_after(last_for_block[b - 1], "predecessor-block");
    check_after(op.after_op, "after_op");
    last_for_block[b] = i;
  }

  // 5. Memory replay over event times.
  struct Event {
    Seconds time;
    int order;  // allocs (starts) before frees at equal time? frees first
    Bytes delta;
  };
  std::vector<Event> events;
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const Op& op = plan.ops[ii];
    const OpRecord& r = trace.records[ii];
    const Bytes alloc = alloc_of(plan, op);
    const Bytes freed = free_of(plan, op);
    if (alloc > 0) events.push_back({r.start, 1, alloc});
    if (freed > 0) events.push_back({r.end, 0, -freed});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;  // frees apply before allocs at the same time
  });
  Bytes used = 0;
  for (const Event& e : events) {
    used += e.delta;
    if (used > plan.capacity + 1) {
      std::ostringstream os;
      os << "memory exceeds capacity at t=" << e.time << " (" << used
         << " > " << plan.capacity << ")";
      fail(os.str());
      break;
    }
  }

  // 6. Offload-tier residency replay: a swap-out occupies its destination
  // tier from its start until the matching swap-in completes; bounded
  // tiers must never overflow.
  if (plan.hierarchy) {
    struct TierEvent {
      Seconds time;
      int order;
      tier::Tier t;
      Bytes delta;
    };
    std::vector<TierEvent> tier_events;
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const Op& op = plan.ops[ii];
      const OpRecord& r = trace.records[ii];
      const Bytes payload = resolve(
          op.bytes, plan.costs[static_cast<std::size_t>(op.block)].act_bytes);
      if (payload <= 0) continue;
      if (op.kind == OpKind::kSwapOut)
        tier_events.push_back({r.start, 1, op.tier, payload});
      else if (op.kind == OpKind::kSwapIn)
        tier_events.push_back({r.end, 0, op.tier, -payload});
    }
    std::sort(tier_events.begin(), tier_events.end(),
              [](const TierEvent& a, const TierEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.order < b.order;
              });
    Bytes tier_used[tier::kNumTiers] = {0, 0, 0};
    for (const TierEvent& e : tier_events) {
      const auto t = static_cast<int>(e.t);
      tier_used[t] += e.delta;
      // Swap-ins of payloads never swapped out (preloaded weights) drive
      // the replayed level negative; clamp, matching the engine's ledger.
      tier_used[t] = std::max<Bytes>(tier_used[t], 0);
      if (!plan.hierarchy->has(e.t)) {
        std::ostringstream os;
        os << "swap targets absent tier '" << tier::tier_name(e.t) << "'";
        fail(os.str());
        break;
      }
      const tier::TierSpec& spec = plan.hierarchy->spec(e.t);
      if (!spec.unbounded() && tier_used[t] > spec.capacity) {
        std::ostringstream os;
        os << "tier '" << tier::tier_name(e.t) << "' exceeds capacity at t="
           << e.time << " (" << tier_used[t] << " > " << spec.capacity << ")";
        fail(os.str());
        break;
      }
    }
  }
  return violations;
}

}  // namespace karma::sim
