#include "src/sim/trace_check.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

namespace karma::sim {
namespace {

constexpr Seconds kEps = 1e-9;

Bytes resolve(Bytes v, Bytes fallback) {
  return v == Op::kDefault ? fallback : v;
}

Bytes alloc_of(const Plan& plan, const Op& op) {
  const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  const Bytes act = resolve(op.bytes, c.act_bytes);
  switch (op.kind) {
    case OpKind::kForward:
      return resolve(op.alloc, op.retains ? act : c.boundary_bytes);
    case OpKind::kRecompute:
    case OpKind::kBackward:
    case OpKind::kSwapIn:
      return resolve(op.alloc, act);
    default:
      return resolve(op.alloc, 0);
  }
}

Bytes free_of(const Plan& plan, const Op& op) {
  const BlockCost& c = plan.costs[static_cast<std::size_t>(op.block)];
  const Bytes act = resolve(op.bytes, c.act_bytes);
  switch (op.kind) {
    case OpKind::kBackward:
      return resolve(op.free, 2 * act);
    case OpKind::kSwapOut:
      return resolve(op.free, act);
    default:
      return resolve(op.free, 0);
  }
}

}  // namespace

std::vector<std::string> check_trace_invariants(const Plan& plan,
                                                const ExecutionTrace& trace) {
  std::vector<std::string> violations;
  const auto fail = [&](const std::string& what) {
    violations.push_back(what);
  };
  const int n = static_cast<int>(plan.ops.size());
  if (trace.records.size() != plan.ops.size()) {
    fail("record count != op count");
    return violations;
  }

  // 1. Stream exclusivity + issue order.
  std::array<Seconds, kNumStreams> stream_prev_end{};
  std::array<bool, kNumStreams> seen{};
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const OpRecord& r = trace.records[ii];
    const auto s = static_cast<std::size_t>(stream_of_op(plan.ops[ii]));
    if (r.end + kEps < r.start) {
      std::ostringstream os;
      os << "op " << i << " ends before it starts";
      fail(os.str());
    }
    if (seen[s] && r.start + kEps < stream_prev_end[s]) {
      std::ostringstream os;
      os << "op " << i << " overlaps its stream predecessor (start "
         << r.start << " < prev end " << stream_prev_end[s] << ")";
      fail(os.str());
    }
    stream_prev_end[s] = r.end;
    seen[s] = true;
  }

  // 2-4. Dependency chains.
  std::vector<int> last_for_block(plan.blocks.size(), -1);
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const Op& op = plan.ops[ii];
    const OpRecord& r = trace.records[ii];
    const auto b = static_cast<std::size_t>(op.block);
    const auto check_after = [&](int j, const char* why) {
      if (j < 0) return;
      const OpRecord& dep = trace.records[static_cast<std::size_t>(j)];
      if (r.start + kEps < dep.end) {
        std::ostringstream os;
        os << "op " << i << " starts before " << why << " op " << j
           << " completes";
        fail(os.str());
      }
    };
    check_after(last_for_block[b], "same-block");
    if (op.kind == OpKind::kRecompute && op.block > 0)
      check_after(last_for_block[b - 1], "predecessor-block");
    check_after(op.after_op, "after_op");
    last_for_block[b] = i;
  }

  // 5. Memory replay over event times.
  struct Event {
    Seconds time;
    int order;  // allocs (starts) before frees at equal time? frees first
    Bytes delta;
  };
  std::vector<Event> events;
  for (int i = 0; i < n; ++i) {
    const auto ii = static_cast<std::size_t>(i);
    const Op& op = plan.ops[ii];
    const OpRecord& r = trace.records[ii];
    const Bytes alloc = alloc_of(plan, op);
    const Bytes freed = free_of(plan, op);
    if (alloc > 0) events.push_back({r.start, 1, alloc});
    if (freed > 0) events.push_back({r.end, 0, -freed});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;  // frees apply before allocs at the same time
  });
  Bytes used = 0;
  for (const Event& e : events) {
    used += e.delta;
    if (used > plan.capacity + 1) {
      std::ostringstream os;
      os << "memory exceeds capacity at t=" << e.time << " (" << used
         << " > " << plan.capacity << ")";
      fail(os.str());
      break;
    }
  }

  // 6. Offload-tier residency replay, by lifetime class (DESIGN.md §9):
  //   activation  swap-out occupies its destination tier from its start
  //               until the matching swap-in completes;
  //   gradient    gradient-out occupies the tier until the block's
  //               CpuUpdate / DeviceUpdate completes (the consumer);
  //   weight shard traffic reads/writes the pinned host master copy —
  //               no dynamic tier traffic, the static charge is
  //               plan.host_baseline_resident.
  // Bounded tiers must never overflow, and every gradient charge must be
  // consumed by the end of the trace (the pairing check the bounded
  // multi-iteration host ledger rests on).
  if (plan.hierarchy) {
    enum EventKind { kCharge, kActRelease, kGradConsume };
    struct TierEvent {
      Seconds time;
      int order;  // releases apply before charges at equal time
      EventKind what;
      tier::Tier t;
      tier::Residency r;
      int block;
      Bytes bytes;
    };
    std::vector<TierEvent> tier_events;
    for (int i = 0; i < n; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const Op& op = plan.ops[ii];
      const OpRecord& r = trace.records[ii];
      if (op.kind == OpKind::kCpuUpdate || op.kind == OpKind::kDeviceUpdate) {
        tier_events.push_back({r.end, 0, kGradConsume, op.tier, op.residency,
                               op.block, op.bytes > 0 ? op.bytes : 0});
        continue;
      }
      const Bytes payload = resolve(
          op.bytes, plan.costs[static_cast<std::size_t>(op.block)].act_bytes);
      if (payload <= 0) continue;
      if (op.residency == tier::Residency::kWeightShard) continue;
      if (op.kind == OpKind::kSwapOut)
        tier_events.push_back(
            {r.start, 1, kCharge, op.tier, op.residency, op.block, payload});
      else if (op.kind == OpKind::kSwapIn &&
               op.residency != tier::Residency::kGradient)
        tier_events.push_back(
            {r.end, 0, kActRelease, op.tier, op.residency, op.block, payload});
    }
    std::sort(tier_events.begin(), tier_events.end(),
              [](const TierEvent& a, const TierEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.order < b.order;
              });
    Bytes tier_used[tier::kNumTiers] = {0, 0, 0};
    if (plan.host_baseline_resident > 0) {
      tier_used[static_cast<int>(tier::Tier::kHost)] =
          plan.host_baseline_resident;
      // The pinned baseline must fit on its own: a plan whose shards
      // alone overflow DRAM emits no tier event, so the per-event check
      // below would never see it.
      if (plan.hierarchy->has(tier::Tier::kHost)) {
        const tier::TierSpec& host = plan.hierarchy->spec(tier::Tier::kHost);
        if (!host.unbounded() && plan.host_baseline_resident > host.capacity) {
          std::ostringstream os;
          os << "pinned host baseline exceeds capacity ("
             << plan.host_baseline_resident << " > " << host.capacity << ")";
          fail(os.str());
        }
      } else {
        fail("pinned host baseline without a host tier in the hierarchy");
      }
    }
    // (block, tier) -> outstanding bytes, mirroring the engine's clamped
    // pairing (a swap-in/update only releases what was actually charged).
    std::map<std::pair<int, int>, Bytes> spilled, grads;
    for (const TierEvent& e : tier_events) {
      const auto t = static_cast<int>(e.t);
      const auto key = std::make_pair(e.block, t);
      switch (e.what) {
        case kCharge: {
          tier_used[t] += e.bytes;
          (e.r == tier::Residency::kGradient ? grads : spilled)[key] +=
              e.bytes;
          break;
        }
        case kActRelease: {
          Bytes& out = spilled[key];
          const Bytes back = std::min(out, e.bytes);
          out -= back;
          tier_used[t] -= back;
          break;
        }
        case kGradConsume: {
          // An update may consume gradients from any tier the block's
          // gradient-out charged; an explicit op.bytes caps the amount.
          Bytes budget =
              e.bytes > 0 ? e.bytes : tier::TierSpec::kUnbounded;
          for (auto& [gkey, out] : grads) {
            if (gkey.first != e.block || out <= 0) continue;
            const Bytes back = std::min(out, budget);
            out -= back;
            tier_used[gkey.second] -= back;
            budget -= back;
            if (budget <= 0) break;
          }
          break;
        }
      }
      if (e.what != kCharge) continue;
      if (!plan.hierarchy->has(e.t)) {
        std::ostringstream os;
        os << "swap targets absent tier '" << tier::tier_name(e.t) << "'";
        fail(os.str());
        break;
      }
      const tier::TierSpec& spec = plan.hierarchy->spec(e.t);
      if (!spec.unbounded() && tier_used[t] > spec.capacity) {
        std::ostringstream os;
        os << "tier '" << tier::tier_name(e.t) << "' exceeds capacity at t="
           << e.time << " (" << tier_used[t] << " > " << spec.capacity << ")";
        fail(os.str());
        break;
      }
    }
    // Gradient conservation: every gradient-out must have been consumed by
    // an update before the trace ends — a leak here is exactly the
    // unbounded-host drift the per-tier ledger exists to rule out.
    Bytes leaked = 0;
    for (const auto& [key, out] : grads) leaked += out;
    if (leaked > 0) {
      std::ostringstream os;
      os << "gradient bytes never consumed by an update: " << leaked << "B";
      fail(os.str());
    }
  }
  return violations;
}

}  // namespace karma::sim
