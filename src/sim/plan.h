// Execution-plan intermediate representation (KARMA workflow step 5).
//
// A Plan is what every strategy — KARMA, vDNN++, SuperNeurons, gradient
// checkpointing, the in-core baseline, and the 5-stage distributed
// pipeline — compiles down to. Ops are listed in *issue order* and bound
// to streams by kind, exactly like work submitted to CUDA streams; the
// engine (engine.h) replays them with stream-FIFO + per-block dependency
// semantics and capacity accounting, so overlap and stalls emerge rather
// than being asserted.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/graph/model.h"
#include "src/sim/device.h"
#include "src/tier/hierarchy.h"
#include "src/util/units.h"

namespace karma::sim {

/// A block of consecutive layers [first_layer, last_layer), the paper's
/// unit of swapping / recompute / weight update (Sec. III-B footnote 1).
struct Block {
  int first_layer = 0;
  int last_layer = 0;  // exclusive
  int num_layers() const { return last_layer - first_layer; }
};

/// Per-block costs, precomputed by the planner from the analytic models
/// and the device spec.
struct BlockCost {
  Seconds fwd_time = 0.0;    ///< forward compute time on-device
  Seconds bwd_time = 0.0;    ///< backward compute time on-device
  Bytes act_bytes = 0;       ///< retained activations (the swap unit)
  Bytes boundary_bytes = 0;  ///< output of the block's last layer (the
                             ///< checkpoint a following recompute reads)
  Bytes param_bytes = 0;     ///< weights
  Bytes grad_bytes = 0;      ///< weight gradients
};

enum class OpKind {
  kForward,    ///< forward compute of a block; allocates its activations
  kBackward,   ///< backward compute; consumes + frees its activations
  kRecompute,  ///< re-run of forward to rematerialize activations
  kSwapOut,    ///< device -> host copy; frees bytes on completion
  kSwapIn,     ///< host -> device copy; allocates bytes at start
  kAllReduce,  ///< gradient exchange for a block (duration from net model)
  kCpuUpdate,  ///< host-side SGD step on a block's parameters
  kDeviceUpdate,  ///< GPU-side SGD step (ablation baseline; occupies the
                  ///< compute stream, duration must be explicit)
};

const char* op_kind_name(OpKind kind);

/// Streams mirror the CUDA execution resources KARMA uses: one compute
/// queue, one DMA engine per direction, the NIC, the host CPU, and — for
/// the tiered-offload extension — one NVMe queue per direction (host-side
/// DMA to storage, overlapping both PCIe DMA engines).
enum class Stream {
  kCompute = 0,
  kH2D = 1,
  kD2H = 2,
  kNet = 3,
  kCpu = 4,
  kNvmeRead = 5,
  kNvmeWrite = 6,
};
inline constexpr int kNumStreams = 7;

Stream stream_of(OpKind kind);

/// One unit of work. Sentinel values (-1) mean "derive the default from
/// the op kind and the block's BlockCost":
///   Forward    bytes=act  alloc=act (or boundary if !retains)  free=0
///   Recompute  bytes=act  alloc=act                            free=0
///   Backward   bytes=act  alloc=act (gradient wavefront)       free=2*act
///   SwapIn     alloc=bytes, free=0;  SwapOut  alloc=0, free=bytes
///   AllReduce / CpuUpdate: no device memory, explicit duration required.
struct Op {
  OpKind kind = OpKind::kForward;
  int block = 0;
  /// Offload tier this swap targets: the swap-out destination or swap-in
  /// source. kHost reproduces the original two-level model; kNvme routes
  /// the transfer through the NVMe streams at storage bandwidth. Ignored
  /// for non-swap ops.
  tier::Tier tier = tier::Tier::kHost;
  /// Residency class of the payload (DESIGN.md §9) — what the destination
  /// tier's ledger charges and how the charge is eventually released:
  ///   kActivation   swap-out charges, the matching swap-in releases;
  ///   kWeightShard  reads/writes of the pinned host master copy: no
  ///                 ledger traffic (the baseline charge is static);
  ///   kGradient     swap-out charges, the block's CpuUpdate/DeviceUpdate
  ///                 releases on completion (set `bytes` on the update op
  ///                 to the gradient payload it consumes).
  /// Ignored for Forward/Backward/Recompute/AllReduce.
  tier::Residency residency = tier::Residency::kActivation;
  Bytes bytes = kDefault;      ///< swap payload (drives transfer time)
  Bytes alloc = kDefault;      ///< device bytes reserved when the op starts
  Bytes free = kDefault;       ///< device bytes released when it completes
  Seconds duration = kAuto;    ///< override; kAuto = engine derives
  bool retains = true;         ///< forward only: keep activations for bwd
  int iteration = 0;           ///< for multi-iteration (distributed) plans
  /// Optional explicit dependency: index into Plan::ops that must complete
  /// before this op starts. Lets planners express policies like vDNN's
  /// lookahead-1 prefetch or ooc_cuDNN's synchronous per-layer swaps,
  /// which deliberately *don't* start transfers as early as possible.
  int after_op = -1;

  static constexpr Bytes kDefault = -1;
  static constexpr Seconds kAuto = -1.0;
};

/// Tier-aware stream binding: swaps tagged kNvme run on the NVMe streams,
/// everything else falls back to stream_of(op.kind).
Stream stream_of_op(const Op& op);

struct Plan {
  std::string strategy;              ///< e.g. "karma+recompute"
  std::vector<Block> blocks;
  std::vector<BlockCost> costs;      ///< parallel to blocks
  Bytes capacity = 0;                ///< effective device capacity
  Bytes baseline_resident = 0;       ///< always-resident bytes (reported
                                     ///< in peak memory, outside capacity)
  /// Bytes pinned on the HOST tier for the whole plan (the distributed
  /// pipeline's master weight shards; DESIGN.md §9). Charged into the
  /// engine's host ledger as Residency::kWeightShard before any op runs,
  /// so transient gradient/activation traffic competes with it for the
  /// bounded tier. 0 for single-GPU plans.
  Bytes host_baseline_resident = 0;
  /// Offload-tier capacities for the tiered extension. nullopt (default)
  /// reproduces the seed's two-level model: unbounded host DRAM, no NVMe.
  /// When set, the engine charges swap-out payloads against the
  /// destination tier's ledger and deadlock reports include every tier.
  std::optional<tier::StorageHierarchy> hierarchy;
  std::vector<Op> ops;               ///< issue order
  /// Stage annotation for pretty-printing (Sec. III-F.3): stage_of[i] is
  /// the stage index of ops[i]; ops sharing a stage are "||" in the paper
  /// notation. Purely cosmetic — the engine derives overlap itself.
  std::vector<int> stage_of;

  int num_blocks() const { return static_cast<int>(blocks.size()); }

  /// Renders the Sec. III-F.3 schedule string, e.g.
  /// "F1 -> F2||Sout1 -> F3 -> ... -> B1".
  std::string schedule_string() const;
};

/// Computes a block's cost from the analytic models + device spec.
BlockCost compute_block_cost(const graph::Model& model, const Block& block,
                             const DeviceSpec& device);

/// Uniform partition of a model into blocks of at most `max_layers` layers.
std::vector<Block> uniform_blocks(const graph::Model& model, int max_layers);

/// Structural validation; throws std::logic_error with a diagnostic when:
///  - block ranges are not a disjoint complete cover of the layers
///    (constraint 9.1 / 9.2),
///  - forwards / backwards are not issued in topological / reverse order,
///  - a backward runs without resident activations (no swap-in or
///    recompute after the last eviction),
///  - a recompute runs without its predecessor block's output available,
///  - an AllReduce / CpuUpdate lacks an explicit duration.
void validate_plan(const Plan& plan);

}  // namespace karma::sim
