// Hardware parameters for the simulated platform.
//
// Substitution note (DESIGN.md §2): the paper runs on ABCI (Table II).
// Every experiment here runs on a DeviceSpec carrying those same numbers;
// the discrete-event engine in engine.h turns them into time. Per-kind
// efficiency factors model how far real kernels sit from peak, and a
// roofline term (device memory bandwidth) catches the element-wise layers
// that are bandwidth- rather than FLOP-bound.
#pragma once

#include <string>

#include "src/graph/layer.h"
#include "src/tier/hierarchy.h"
#include "src/util/units.h"

namespace karma::sim {

/// Multiplicative corrections applied on top of the analytic cost model —
/// the seam karma::calib uses to overlay *measured* constants onto a
/// DeviceSpec without touching its physical parameters. Each factor scales
/// one op-kind's predicted time; 1.0 everywhere (the default) is the
/// identity and changes no cost bit (x * 1.0 == x in IEEE-754), so
/// uncalibrated plans, goldens, and cache keys are unaffected.
struct CostScale {
  double compute = 1.0;     ///< kernel_time
  double h2d = 1.0;         ///< host->device swap-in leg
  double d2h = 1.0;         ///< device->host swap-out leg
  double nvme_read = 1.0;   ///< NVMe->host streaming read leg
  double nvme_write = 1.0;  ///< host->NVMe streaming write leg
  double cpu_update = 1.0;  ///< host-side optimizer update

  bool identity() const {
    return compute == 1.0 && h2d == 1.0 && d2h == 1.0 && nvme_read == 1.0 &&
           nvme_write == 1.0 && cpu_update == 1.0;
  }
  friend bool operator==(const CostScale&, const CostScale&) = default;
};

/// NVMe congestion refinement (DESIGN.md §16). The base analytic model
/// assumes one sequential IO stream at full device bandwidth; a fleet
/// node's SSD also serves the opposite swap direction, checkpoint
/// writes, and co-tenants, so sustained bandwidth derates with the
/// queue ahead of each submission — and reads degrade differently from
/// writes when both directions are in flight (flash program ops stall
/// reads far more than the reverse). Identity by default (queue_depth
/// 0, penalties 1.0): bw / (1 + 0) == bw and x * 1.0 == x in IEEE-754,
/// so every existing plan, golden, and cache key is byte-unchanged.
struct NvmeContention {
  /// Mean competing IOs already queued at submission. Effective NVMe
  /// bandwidth = bw / (1 + queue_depth); 0 = uncontended.
  double queue_depth = 0.0;
  /// Duration multiplier on an NVMe read issued while a write is in
  /// flight on this device (mixed-load asymmetry; >= 1).
  double mixed_read_penalty = 1.0;
  /// Duration multiplier on an NVMe write issued while a read is in
  /// flight (typically closer to 1 than the read penalty).
  double mixed_write_penalty = 1.0;

  bool identity() const {
    return queue_depth == 0.0 && mixed_read_penalty == 1.0 &&
           mixed_write_penalty == 1.0;
  }
  friend bool operator==(const NvmeContention&, const NvmeContention&) =
      default;
};

struct DeviceSpec {
  std::string name = "generic";

  Bytes memory_capacity = 0;       ///< near-memory (device HBM) capacity
  Flops peak_flops = 0;            ///< device peak arithmetic throughput
  Bandwidth device_mem_bw = 0;     ///< HBM bandwidth (roofline term)

  Bandwidth h2d_bw = 0;            ///< host->device interconnect
  Bandwidth d2h_bw = 0;            ///< device->host interconnect
  Seconds swap_latency = 10e-6;    ///< fixed per-transfer launch latency

  Flops cpu_flops = 0;             ///< host cores, for CPU-side updates
  Bandwidth host_mem_bw = 0;       ///< host DRAM bandwidth

  /// ---- Tiered-offload extension (DESIGN.md §7) ----
  /// 0 = unbounded host DRAM (the seed's two-level assumption).
  Bytes host_capacity = 0;
  /// 0 = no NVMe tier present on this platform.
  Bytes nvme_capacity = 0;
  Bandwidth nvme_read_bw = 0;      ///< storage -> host staging throughput
  Bandwidth nvme_write_bw = 0;     ///< host -> storage throughput
  Seconds nvme_latency = 100e-6;   ///< per-IO submission + flash latency

  /// Measured-cost calibration overlay (DESIGN.md §13). Identity by
  /// default; calib::apply() fills it from a CalibrationTable.
  CostScale scale;

  /// NVMe congestion model (DESIGN.md §16). Identity by default; fleet
  /// nodes whose SSD is shared set a queue depth and mixed-load
  /// penalties, and the engine derates swap legs accordingly.
  NvmeContention nvme_contention;

  /// Fraction of peak_flops a kernel of this kind achieves in practice.
  double efficiency(graph::LayerKind kind) const;

  /// Time to execute `flops` of `kind` touching `bytes` of device memory:
  /// max of the compute roofline and the bandwidth roofline.
  Seconds kernel_time(graph::LayerKind kind, Flops flops, Bytes bytes) const;

  /// Host-to-device transfer time for `bytes`.
  Seconds h2d_time(Bytes bytes) const;
  /// Device-to-host transfer time for `bytes`.
  Seconds d2h_time(Bytes bytes) const;

  /// NVMe read (swap-in source) / write (swap-out sink) time for `bytes`.
  /// Throws std::logic_error when the device has no NVMe tier.
  Seconds nvme_read_time(Bytes bytes) const;
  Seconds nvme_write_time(Bytes bytes) const;

  bool has_nvme() const { return nvme_capacity > 0; }

  /// Transfer time into the device from offload tier `t`.
  Seconds read_from_tier_time(tier::Tier t, Bytes bytes) const;
  /// Transfer time out of the device to offload tier `t`.
  Seconds write_to_tier_time(tier::Tier t, Bytes bytes) const;

  /// CPU-side SGD weight update time for `bytes` of parameters + the same
  /// amount of gradients (memory-bound streaming kernel).
  Seconds cpu_update_time(Bytes param_bytes) const;
};

/// Nvidia V100 SXM2 16 GiB as deployed in ABCI (paper Table II):
/// PCIe gen3 x16 (16 GB/s), 14.7 TFLOPS detected by the paper's device
/// query, HBM2 at 900 GB/s, dual Xeon Gold 6148 hosts.
DeviceSpec v100_abci();

/// Same device but with NVLink-class host interconnect (50 GB/s), for
/// sensitivity studies.
DeviceSpec v100_nvlink_host();

/// A deliberately tiny device for tests (1 MiB, round numbers).
DeviceSpec test_device();

/// ABCI V100 node with its local NVMe SSD exposed as a third tier:
/// 384 GiB host DRAM (now bounded), 1.6 TB Intel DC P4600-class NVMe at
/// ~3.2/1.3 GB/s sequential read/write.
DeviceSpec v100_abci_nvme();

/// test_device() plus a bounded 4 KiB host and a 64 KiB NVMe tier at half
/// the host bandwidth (round numbers for deterministic tests).
DeviceSpec test_device_tiered();

/// A100-SXM4-40GiB-class node for heterogeneous fleets (DESIGN.md §16):
/// PCIe gen4 host link (32 GB/s), HBM2e at 1.56 TB/s, ample host DRAM
/// (512 GiB) and a gen4 NVMe at ~6.8/4.0 GB/s. Paired against
/// v100_abci_nvme() this is the "strong" generation in the mixed-fleet
/// placement bench.
DeviceSpec a100_fleet_node();

/// The storage hierarchy a DeviceSpec implies: two tiers (unbounded host)
/// in the seed configuration, three when host_capacity/nvme_capacity are
/// set. This is the bridge from the flat spec to tier-aware planning.
tier::StorageHierarchy hierarchy_of(const DeviceSpec& device);

}  // namespace karma::sim
