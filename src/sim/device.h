// Hardware parameters for the simulated platform.
//
// Substitution note (DESIGN.md §2): the paper runs on ABCI (Table II).
// Every experiment here runs on a DeviceSpec carrying those same numbers;
// the discrete-event engine in engine.h turns them into time. Per-kind
// efficiency factors model how far real kernels sit from peak, and a
// roofline term (device memory bandwidth) catches the element-wise layers
// that are bandwidth- rather than FLOP-bound.
#pragma once

#include "src/graph/layer.h"
#include "src/util/units.h"

namespace karma::sim {

struct DeviceSpec {
  const char* name = "generic";

  Bytes memory_capacity = 0;       ///< near-memory (device HBM) capacity
  Flops peak_flops = 0;            ///< device peak arithmetic throughput
  Bandwidth device_mem_bw = 0;     ///< HBM bandwidth (roofline term)

  Bandwidth h2d_bw = 0;            ///< host->device interconnect
  Bandwidth d2h_bw = 0;            ///< device->host interconnect
  Seconds swap_latency = 10e-6;    ///< fixed per-transfer launch latency

  Flops cpu_flops = 0;             ///< host cores, for CPU-side updates
  Bandwidth host_mem_bw = 0;       ///< host DRAM bandwidth

  /// Fraction of peak_flops a kernel of this kind achieves in practice.
  double efficiency(graph::LayerKind kind) const;

  /// Time to execute `flops` of `kind` touching `bytes` of device memory:
  /// max of the compute roofline and the bandwidth roofline.
  Seconds kernel_time(graph::LayerKind kind, Flops flops, Bytes bytes) const;

  /// Host-to-device transfer time for `bytes`.
  Seconds h2d_time(Bytes bytes) const;
  /// Device-to-host transfer time for `bytes`.
  Seconds d2h_time(Bytes bytes) const;

  /// CPU-side SGD weight update time for `bytes` of parameters + the same
  /// amount of gradients (memory-bound streaming kernel).
  Seconds cpu_update_time(Bytes param_bytes) const;
};

/// Nvidia V100 SXM2 16 GiB as deployed in ABCI (paper Table II):
/// PCIe gen3 x16 (16 GB/s), 14.7 TFLOPS detected by the paper's device
/// query, HBM2 at 900 GB/s, dual Xeon Gold 6148 hosts.
DeviceSpec v100_abci();

/// Same device but with NVLink-class host interconnect (50 GB/s), for
/// sensitivity studies.
DeviceSpec v100_nvlink_host();

/// A deliberately tiny device for tests (1 MiB, round numbers).
DeviceSpec test_device();

}  // namespace karma::sim
