// Independent invariant checker for execution traces.
//
// Re-derives, from the Plan and the Trace alone (never from engine
// internals), every property a correct replay must satisfy:
//   1. ops on one stream never overlap and run in issue order;
//   2. per-block chains are respected (an op starts only after the
//      previous op touching its block completed);
//   3. recomputes start only after the predecessor block's latest op;
//   4. explicit after_op gates are honored;
//   5. device memory, replayed from the alloc/free semantics, never
//      exceeds the plan's capacity at any event time.
// Used by property tests as a second implementation to cross-check the
// engine, and available to library users as a debugging aid.
#pragma once

#include <string>
#include <vector>

#include "src/sim/engine.h"

namespace karma::sim {

/// Returns the list of violated invariants (empty = trace is consistent).
std::vector<std::string> check_trace_invariants(const Plan& plan,
                                                const ExecutionTrace& trace);

}  // namespace karma::sim
