// karma-planctl — command-line client for karma-pland (DESIGN.md §12).
//
//   karma-planctl plan --socket S --request req.json [--out plan.json]
//                      [--tenant T]
//   karma-planctl stats --socket S
//   karma-planctl metrics --socket S
//   karma-planctl ping --socket S
//   karma-planctl shutdown --socket S
//   karma-planctl calibrate --socket S [--table table.json]
//   karma-planctl example-request [--model NAME] [--batch N]
//                                 [--fleet STRONG,WEAK] [--out req.json]
//
// `plan` submits a request_io request artifact and writes the plan
// artifact's exact wire bytes to --out (stdout when omitted) — the
// multi-process storm test forks N of these and diffs the outputs for
// byte-identity. `example-request` emits a ready-to-plan request
// artifact (no daemon needed; --model picks from the zoo, default
// resnet50; --fleet S,W embeds a mixed-generation FleetSpec) so a shell
// can drive the full loop: example-request | plan | stats. `metrics` prints the daemon
// registry's snapshot (counters, gauges, latency-histogram percentiles —
// DESIGN.md §15). `calibrate` installs a fitted
// calib::CalibrationTable on the daemon node-wide (omitting --table
// clears back to the analytic model); the new active hash prints on
// stdout and also shows in `stats` as "calibration". Exit codes: 0 =
// plan returned, 2 = the daemon answered with a PlanError (its
// describe() goes to stderr), 3 = transport or usage failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/api/remote_session.h"
#include "src/api/request_io.h"
#include "src/calib/table.h"
#include "src/graph/model_zoo.h"
#include "src/sim/device.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: karma-planctl plan --socket S --request FILE [--out FILE]"
      " [--tenant T]\n"
      "       karma-planctl {stats|metrics|ping|shutdown} --socket S\n"
      "       karma-planctl calibrate --socket S [--table FILE]\n"
      "       karma-planctl example-request [--model NAME] [--batch N]\n"
      "                                     [--fleet STRONG,WEAK]"
      " [--out FILE]\n"
      "models: resnet50 resnet200 vgg16 wrn28-10 unet lstm transformer"
      " transformer-chain\n");
  return 3;
}

/// Zoo lookup for example-request. Transformer variants use the smallest
/// Megatron config (0.7B) so the artifact stays shell-pipeline sized.
bool make_zoo_model(const std::string& name, std::int64_t batch,
                    karma::graph::Model* out) {
  using namespace karma::graph;
  if (name == "resnet50") *out = make_resnet50(batch);
  else if (name == "resnet200") *out = make_resnet200(batch);
  else if (name == "vgg16") *out = make_vgg16(batch);
  else if (name == "wrn28-10") *out = make_wrn28_10(batch);
  else if (name == "unet") *out = make_unet(batch);
  else if (name == "lstm") *out = make_lstm_seq2seq(batch);
  else if (name == "transformer")
    *out = make_transformer(megatron_config(0), batch);
  else if (name == "transformer-chain")
    *out = make_transformer_chain(megatron_config(0), batch);
  else return false;
  return true;
}

bool write_file_or_stdout(const std::string& path, const std::string& text) {
  if (path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text << '\n';
  return out.good();
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::string socket_path, request_path, out_path, tenant, table_path;
  std::string model_name = "resnet50", fleet_spec;
  std::int64_t batch = 256;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--socket" && v) {
      socket_path = v;
      ++i;
    } else if (arg == "--request" && v) {
      request_path = v;
      ++i;
    } else if (arg == "--table" && v) {
      table_path = v;
      ++i;
    } else if (arg == "--out" && v) {
      out_path = v;
      ++i;
    } else if (arg == "--tenant" && v) {
      tenant = v;
      ++i;
    } else if (arg == "--batch" && v) {
      batch = std::atoll(v);
      ++i;
    } else if (arg == "--model" && v) {
      model_name = v;
      ++i;
    } else if (arg == "--fleet" && v) {
      fleet_spec = v;
      ++i;
    } else {
      return usage();
    }
  }

  if (cmd == "example-request") {
    if (batch <= 0) return usage();
    karma::api::PlanRequest request;
    if (!make_zoo_model(model_name, batch, &request.model)) {
      std::fprintf(stderr, "karma-planctl: unknown model '%s'\n",
                   model_name.c_str());
      return usage();
    }
    request.device = karma::sim::v100_abci();
    request.planner.enable_recompute = true;
    request.optimizer.kind = karma::api::OptimizerSpec::Kind::kAdam;
    if (!fleet_spec.empty()) {
      int strong = 0, weak = 0;
      if (std::sscanf(fleet_spec.c_str(), "%d,%d", &strong, &weak) != 2 ||
          strong < 0 || weak < 0 || strong + weak < 2) {
        std::fprintf(stderr, "karma-planctl: --fleet wants STRONG,WEAK"
                             " with >= 2 nodes total\n");
        return usage();
      }
      request.fleet = karma::place::mixed_generation_fleet(
          strong, weak, /*weak_host_capacity=*/48LL << 30);
    }
    if (!write_file_or_stdout(out_path,
                              karma::api::request_to_json(request))) {
      std::fprintf(stderr, "karma-planctl: cannot write '%s'\n",
                   out_path.c_str());
      return 3;
    }
    return 0;
  }

  if (socket_path.empty()) return usage();

  auto connected = karma::api::RemoteSession::connect(socket_path, tenant);
  if (!connected) {
    std::fprintf(stderr, "karma-planctl: %s\n",
                 connected.error().message.c_str());
    return 3;
  }
  karma::api::RemoteSession session = std::move(connected).value();

  if (cmd == "ping") {
    if (!session.ping()) {
      std::fprintf(stderr, "karma-planctl: ping failed\n");
      return 3;
    }
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "shutdown") {
    if (!session.shutdown_server()) {
      std::fprintf(stderr, "karma-planctl: shutdown not acknowledged\n");
      return 3;
    }
    return 0;
  }
  if (cmd == "stats") {
    auto stats = session.stats_json();
    if (!stats) {
      std::fprintf(stderr, "karma-planctl: %s\n",
                   stats.error().message.c_str());
      return 3;
    }
    std::printf("%s\n", stats.value().c_str());
    return 0;
  }
  if (cmd == "metrics") {
    auto metrics = session.metrics_json();
    if (!metrics) {
      std::fprintf(stderr, "karma-planctl: %s\n",
                   metrics.error().message.c_str());
      return 3;
    }
    std::printf("%s\n", metrics.value().c_str());
    return 0;
  }
  if (cmd == "calibrate") {
    std::string table_json;
    if (!table_path.empty()) {
      std::string text;
      if (!read_file(table_path, &text)) {
        std::fprintf(stderr, "karma-planctl: cannot read '%s'\n",
                     table_path.c_str());
        return 3;
      }
      // Validate locally and re-emit canonically, so the daemon hashes
      // the same bytes content_hash() would produce for this table.
      try {
        table_json =
            karma::calib::CalibrationTable::from_json(text).to_json();
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "karma-planctl: bad calibration table: %s\n",
                     ex.what());
        return 3;
      }
    }
    auto hash = session.calibrate(table_json);
    if (!hash) {
      std::fprintf(stderr, "karma-planctl: %s\n",
                   hash.error().message.c_str());
      return hash.error().code == karma::api::PlanErrorCode::kUnavailable
                 ? 3
                 : 2;
    }
    std::printf("%s\n", hash.value().c_str());
    return 0;
  }
  if (cmd != "plan" || request_path.empty()) return usage();

  std::string request_json;
  if (!read_file(request_path, &request_json)) {
    std::fprintf(stderr, "karma-planctl: cannot read '%s'\n",
                 request_path.c_str());
    return 3;
  }
  auto parsed = karma::api::request_from_json(request_json);
  if (!parsed) {
    std::fprintf(stderr, "karma-planctl: bad request artifact:\n%s\n",
                 parsed.error().describe().c_str());
    return 3;
  }

  auto plan = session.plan_raw(parsed.value());
  if (!plan) {
    const karma::api::PlanError& e = plan.error();
    std::fprintf(stderr, "%s\n", e.describe().c_str());
    return e.code == karma::api::PlanErrorCode::kUnavailable ? 3 : 2;
  }
  if (out_path.empty()) {
    std::fwrite(plan.value().data(), 1, plan.value().size(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "karma-planctl: cannot write '%s'\n",
                   out_path.c_str());
      return 3;
    }
    out << plan.value() << '\n';
  }
  return 0;
}
