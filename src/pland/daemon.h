// karma::pland::Daemon — the cross-process fleet planning service
// (DESIGN.md §12).
//
// One daemon per node fronts one api::Engine (and therefore ONE shared
// two-level plan cache) for every training job on the machine. Clients
// speak the length-prefixed JSON protocol (protocol.h) over a unix domain
// socket, via api::RemoteSession or the karma-planctl CLI.
//
// Request path, designed so a cold storm can never sit in front of a warm
// hit:
//   - HIT PATH (connection thread): every plan request is first probed
//     against the caches with Engine::try_cached — no queue, no worker,
//     no search. Warm hits and memoized negatives answer in microseconds
//     regardless of what the worker pool is chewing on.
//   - MISS PATH (worker pool): misses are enqueued per tenant and drained
//     by the daemon's plan workers under stride scheduling — weighted
//     round-robin over the non-empty tenant queues, so K tenants get
//     capacity proportional to their weights no matter how many requests
//     any one of them piles up. Identical concurrent misses still
//     collapse through the Engine's single-flight (in-process) and the
//     DiskStore claim files (fleet-wide).
//   - ADMISSION: each tenant's queue is depth-bounded; beyond it the
//     daemon sheds the request immediately with PlanError{kOverloaded}
//     and a retry_after hint instead of letting queues (and client
//     latency) grow without bound.
//
// Stats: the "stats" request exports EngineStats + CacheStats + claim
// counters + per-tenant admission/completion/shed counters as JSON — the
// observable surface BENCH_service.json and the CI smoke job read.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/api/engine.h"
#include "src/cache/plan_cache.h"

namespace karma::pland {

struct DaemonOptions {
  /// Filesystem path the unix socket binds at. A stale socket file from a
  /// dead daemon is unlinked on start; a live one fails start().
  std::string socket_path;
  /// The fronted Engine (cache mode/capacity/dir, engine workers).
  api::EngineOptions engine;
  /// Daemon plan workers draining the tenant queues; 0 = auto
  /// (hardware_concurrency clamped to [2, 8]).
  std::size_t num_workers = 0;
  /// Admission bound: max queued (not yet started) misses per tenant.
  std::size_t max_queue_per_tenant = 64;
  /// retry_after hint attached to kOverloaded sheds, seconds.
  double retry_after = 0.25;
  /// Stride-scheduling weights; tenants absent from the map weigh 1.0.
  /// A tenant with weight 2 drains twice as often as one with weight 1
  /// when both have backlog.
  std::map<std::string, double> tenant_weights;
  /// Deprioritize the plan-worker threads (SCHED_IDLE, with this nice
  /// delta as fallback). Cold searches are batch work; warm hits are
  /// latency work served on the connection threads — idle-policy workers
  /// are preempted unconditionally when a hit wakes, which is what keeps
  /// one tenant's cold storm from inflating another tenant's hit tail
  /// even on a starved box. Lowering priority needs no privilege; 0
  /// disables.
  int worker_nice = 10;
  /// Non-empty enables request-lifecycle tracing (DESIGN.md §15) for the
  /// daemon's lifetime and flushes the trace ring to
  /// `<trace_dir>/plan-<seq>.trace.json` (Chrome trace_event JSON —
  /// Perfetto-loadable) after every completed miss and once more at
  /// stop(). The directory is created best-effort on start().
  std::string trace_dir;
};

struct TenantStats {
  std::string tenant;
  std::uint64_t admitted = 0;   ///< misses accepted into the queue
  std::uint64_t completed = 0;  ///< searches finished (any outcome)
  std::uint64_t shed = 0;       ///< rejected kOverloaded
  std::uint64_t hits = 0;       ///< served on the hit path, no queue
  std::size_t queue_depth = 0;  ///< queued right now
};

/// Since PR 9 the daemon counters live in the engine's obs::Registry
/// ("pland.requests" etc. — the `metrics` verb exports them alongside the
/// engine's), and this struct is a causally-consistent snapshot view:
/// collect_stats reads effects before causes (shed/protocol_errors before
/// requests before connections), so `shed <= requests <= connections`
/// holds in every snapshot even mid-storm.
struct DaemonStats {
  std::uint64_t connections = 0;      ///< accepted over the lifetime
  std::uint64_t requests = 0;         ///< plan envelopes received
  std::uint64_t shed = 0;             ///< total kOverloaded rejections
  std::uint64_t protocol_errors = 0;  ///< unparseable/oversized frames
  api::EngineStats engine;
  cache::CacheStats cache;
  std::uint64_t claims_won = 0;       ///< fleet single-flight leaderships
  std::uint64_t claims_lost = 0;
  /// Active CalibrationTable content hash; "" = analytic cost model.
  std::string calibration;
  /// Schema version of the active table; 0 when uncalibrated.
  std::int64_t calibration_version = 0;
  std::vector<TenantStats> tenants;   ///< sorted by tenant name

  /// The stats envelope body ("stats" value) the daemon serves.
  std::string to_json() const;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();  ///< stop()s if still running

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and spawns the accept loop + plan workers. Returns
  /// false (with the daemon stopped) when the socket cannot be bound —
  /// e.g. a live daemon already owns the path.
  bool start();

  /// Graceful stop, idempotent: closes the listen socket, shuts down
  /// every live connection (their reader threads drain), settles queued
  /// misses with kUnavailable responses, joins all threads.
  void stop();

  /// Blocks until a stop is requested (a "shutdown" envelope, a signal
  /// via request_stop_from_signal, or a concurrent stop()), then performs
  /// the graceful stop on the calling thread.
  void wait();

  /// Async-signal-safe stop request: a lone atomic store, no locks, no
  /// allocation. wait() polls the flag, so no notify is needed.
  void request_stop_from_signal();

  bool running() const;

  const std::string& socket_path() const { return options_.socket_path; }
  const std::shared_ptr<api::Engine>& engine() const { return engine_; }
  DaemonStats stats() const;

  /// Connections currently tracked (live readers plus any finished ones
  /// the accept loop has not reaped yet — it reaps every poll tick).
  std::size_t open_connections() const;

 private:
  struct Impl;
  DaemonOptions options_;
  std::shared_ptr<api::Engine> engine_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace karma::pland
