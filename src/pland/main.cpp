// karma-pland — the node-wide planning daemon (DESIGN.md §12).
//
//   karma-pland --socket /run/karma/pland.sock --cache-dir /var/karma/cache
//
// Every training job on the node then plans through this process (via
// api::RemoteSession or karma-planctl): one shared plan cache, fleet-wide
// single-flight, per-tenant fairness, admission control.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/pland/daemon.h"

namespace {

karma::pland::Daemon* g_daemon = nullptr;

void on_signal(int) {
  // A lone atomic store — async-signal-safe. wait() on the main thread
  // observes it and runs the actual (lock-taking) stop.
  if (g_daemon) g_daemon->request_stop_from_signal();
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH         unix socket to serve on (required)\n"
      "  --cache-dir DIR       persistent plan store directory\n"
      "                        (default: $KARMA_CACHE_DIR, else memory-only)\n"
      "  --workers N           daemon plan workers (default: auto)\n"
      "  --max-queue N         queued misses allowed per tenant before\n"
      "                        shedding kOverloaded (default: 64)\n"
      "  --retry-after SECS    retry hint attached to sheds (default: 0.25)\n"
      "  --tenant-weight T=W   stride-scheduling weight for tenant T\n"
      "                        (repeatable; unlisted tenants weigh 1.0)\n"
      "  --calibration PATH    CalibrationTable JSON to plan with from the\n"
      "                        start (default: $KARMA_CALIB_DIR/\n"
      "                        calibration.json when present; hot-swap at\n"
      "                        runtime with `karma-planctl calibrate`)\n"
      "  --trace-dir DIR       enable request-lifecycle tracing; Chrome\n"
      "                        trace JSON (Perfetto-loadable) is flushed to\n"
      "                        DIR/plan-N.trace.json per completed miss\n",
      argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  karma::pland::DaemonOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.socket_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.engine.cache.cache_dir = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.num_workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--max-queue") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.max_queue_per_tenant = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--retry-after") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.retry_after = std::atof(v);
    } else if (arg == "--calibration") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.engine.cache.calibration_path = v;
    } else if (arg == "--trace-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      options.trace_dir = v;
    } else if (arg == "--tenant-weight") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const char* eq = std::strchr(v, '=');
      if (!eq || eq == v) return usage(argv[0]);
      options.tenant_weights[std::string(v, eq)] = std::atof(eq + 1);
    } else {
      return usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) return usage(argv[0]);

  // Engine construction can refuse to start (an unreadable --calibration
  // file is a configuration error, not something to silently plan without).
  std::unique_ptr<karma::pland::Daemon> daemon;
  try {
    daemon = std::make_unique<karma::pland::Daemon>(std::move(options));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "karma-pland: %s\n", ex.what());
    return 1;
  }
  if (!daemon->start()) {
    std::fprintf(stderr,
                 "karma-pland: cannot bind '%s' (another daemon live on the "
                 "path, or the path is invalid)\n",
                 daemon->socket_path().c_str());
    return 1;
  }
  std::fprintf(stderr, "karma-pland: serving on %s\n",
               daemon->socket_path().c_str());

  g_daemon = daemon.get();
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // write_all already sends with MSG_NOSIGNAL; this covers any other fd a
  // disconnected client could turn into a fatal SIGPIPE.
  struct sigaction ign{};
  ign.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &ign, nullptr);

  daemon->wait();  // returns once a shutdown request or signal lands
  g_daemon = nullptr;
  std::fprintf(stderr, "karma-pland: stopped\n");
  return 0;
}
