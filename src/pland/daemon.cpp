#include "src/pland/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sched.h>
#include <sys/file.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "src/api/request_io.h"
#include "src/calib/table.h"
#include "src/cache/disk_store.h"
#include "src/cache/plan_cache.h"
#include "src/cache/request_key.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/pland/protocol.h"
#include "src/util/hash.h"
#include "src/util/json.h"

namespace karma::pland {

namespace {

using util::json::Value;
using util::json::Writer;

/// One accepted client. The reader thread and the plan workers share it;
/// the write mutex serializes response frames (clients may pipeline, so a
/// worker's plan response can race the reader thread's pong).
struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  int fd;
  std::mutex write_mu;

  bool send(const std::string& payload) {
    std::lock_guard<std::mutex> lock(write_mu);
    return write_frame(fd, payload);
  }
};

/// Builds the sockaddr for `path`; false when it exceeds sun_path.
bool fill_addr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof addr->sun_path) return false;
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::string plan_response(std::int64_t id,
                          const api::Expected<api::Plan, api::PlanError>& out) {
  Writer w;
  w.begin_object();
  w.key("v"); w.value(kProtocolVersion);
  w.key("type"); w.value("plan");
  w.key("id"); w.value(id);
  w.key("ok"); w.value(out.has_value());
  if (out.has_value()) {
    // Spliced verbatim: the artifact on the wire is byte-identical to the
    // engine's Plan::to_json(), for every client of every process.
    w.key("plan"); w.raw(out.value().to_json());
  } else {
    w.key("error"); w.raw(api::error_to_json(out.error()));
  }
  w.end_object();
  return w.take();
}

std::string simple_response(const char* type, std::int64_t id) {
  Writer w;
  w.begin_object();
  w.key("v"); w.value(kProtocolVersion);
  w.key("type"); w.value(type);
  w.key("id"); w.value(id);
  w.key("ok"); w.value(true);
  w.end_object();
  return w.take();
}

std::string protocol_error_response(std::int64_t id,
                                    const std::string& message) {
  api::PlanError e;
  e.code = api::PlanErrorCode::kInvalidRequest;
  e.message = message;
  Writer w;
  w.begin_object();
  w.key("v"); w.value(kProtocolVersion);
  w.key("type"); w.value("error");
  w.key("id"); w.value(id);
  w.key("ok"); w.value(false);
  w.key("error"); w.raw(api::error_to_json(e));
  w.end_object();
  return w.take();
}

void write_cache_stats(Writer& w, const cache::CacheStats& c) {
  w.begin_object();
  w.key("memory_hits"); w.value(static_cast<std::int64_t>(c.memory_hits));
  w.key("disk_hits"); w.value(static_cast<std::int64_t>(c.disk_hits));
  w.key("misses"); w.value(static_cast<std::int64_t>(c.misses));
  w.key("insertions"); w.value(static_cast<std::int64_t>(c.insertions));
  w.key("evictions"); w.value(static_cast<std::int64_t>(c.evictions));
  w.key("disk_writes"); w.value(static_cast<std::int64_t>(c.disk_writes));
  w.key("corrupt_entries");
  w.value(static_cast<std::int64_t>(c.corrupt_entries));
  w.key("resident_bytes"); w.value(static_cast<std::int64_t>(c.resident_bytes));
  w.key("negative_hits"); w.value(static_cast<std::int64_t>(c.negative_hits));
  w.key("negative_insertions");
  w.value(static_cast<std::int64_t>(c.negative_insertions));
  w.end_object();
}

}  // namespace

std::string DaemonStats::to_json() const {
  Writer w;
  w.begin_object();
  w.key("connections"); w.value(static_cast<std::int64_t>(connections));
  w.key("requests"); w.value(static_cast<std::int64_t>(requests));
  w.key("shed"); w.value(static_cast<std::int64_t>(shed));
  w.key("protocol_errors");
  w.value(static_cast<std::int64_t>(protocol_errors));
  w.key("engine");
  w.begin_object();
  w.key("requests"); w.value(static_cast<std::int64_t>(engine.requests));
  w.key("searches"); w.value(static_cast<std::int64_t>(engine.searches));
  w.key("flights_joined");
  w.value(static_cast<std::int64_t>(engine.flights_joined));
  w.key("cancelled"); w.value(static_cast<std::int64_t>(engine.cancelled));
  w.key("deadlines"); w.value(static_cast<std::int64_t>(engine.deadlines));
  w.end_object();
  w.key("cache");
  write_cache_stats(w, cache);
  w.key("claims_won"); w.value(static_cast<std::int64_t>(claims_won));
  w.key("claims_lost"); w.value(static_cast<std::int64_t>(claims_lost));
  w.key("calibration"); w.value(calibration);
  w.key("calibration_version"); w.value(calibration_version);
  w.key("tenants");
  w.begin_array();
  for (const auto& t : tenants) {
    w.begin_object();
    w.key("tenant"); w.value(t.tenant);
    w.key("admitted"); w.value(static_cast<std::int64_t>(t.admitted));
    w.key("completed"); w.value(static_cast<std::int64_t>(t.completed));
    w.key("shed"); w.value(static_cast<std::int64_t>(t.shed));
    w.key("hits"); w.value(static_cast<std::int64_t>(t.hits));
    w.key("queue_depth"); w.value(static_cast<std::int64_t>(t.queue_depth));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

struct Daemon::Impl {
  Impl(const DaemonOptions& options, std::shared_ptr<api::Engine> engine)
      : options(options), engine(std::move(engine)) {
    // Daemon instruments live in the ENGINE's registry, so one `metrics`
    // verb (or RemoteSession::metrics_json) exports the whole process:
    // engine counters + cache gauges + these (DESIGN.md §15).
    obs::Registry& reg = *this->engine->metrics();
    connections = reg.counter("pland.connections");
    requests = reg.counter("pland.requests");
    shed = reg.counter("pland.shed");
    protocol_errors = reg.counter("pland.protocol_errors");
    hit_seconds = reg.histogram("pland.hit_seconds");
    miss_seconds = reg.histogram("pland.miss_seconds");
    queue_wait_seconds = reg.histogram("pland.queue_wait_seconds");
  }

  const DaemonOptions& options;  ///< Daemon owns it and outlives Impl
  std::shared_ptr<api::Engine> engine;

  // ---- Miss queue: per tenant, drained under stride scheduling ----
  // A job carries the RAW request bytes, not a parsed PlanRequest: the
  // connection threads do only O(digest) work per frame, and everything
  // model-sized (parse, keying, the search itself) happens on the plan
  // workers at batch priority. That asymmetry is the fairness mechanism —
  // a cold storm cannot put parse work in front of another tenant's hits.
  struct Job {
    std::shared_ptr<Connection> conn;
    std::int64_t id = 0;
    std::string raw_request;
    util::Digest128 digest;
    std::string tenant;
    /// Admission timestamp (obs::trace_now_us clock): the queue-wait
    /// histogram and the cross-thread "pland.queue_wait" trace slice both
    /// measure dequeue - this.
    std::uint64_t enqueue_us = 0;
  };
  struct TenantQueue {
    std::deque<Job> jobs;
    /// Stride pass: the virtual time this tenant is next served at.
    /// Workers always pick the minimum pass among non-empty queues and
    /// advance the picked tenant by 1/weight — so a weight-2 tenant
    /// drains twice per unit of virtual time for every once of a
    /// weight-1 tenant, regardless of backlog sizes.
    double pass = 0.0;
    double weight = 1.0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t hits = 0;
  };

  int listen_fd = -1;
  /// Exclusive flock on <socket>.lock, held for the daemon's lifetime —
  /// serializes the stale-socket probe/unlink/bind against a concurrently
  /// starting daemon. The lock file itself is never unlinked (unlinking
  /// would reintroduce the race it exists to close).
  int lock_fd = -1;
  std::thread accept_thread;
  std::vector<std::thread> worker_threads;

  // ---- Connection bookkeeping, reaped as connections close ----
  // A long-running daemon serves many short-lived connections; finished
  // reader threads and dead Connection references must not accumulate.
  // Each reader pushes its id onto `finished_conns` as its last act, and
  // the accept loop joins + erases those slots on every poll tick.
  struct ConnSlot {
    std::thread thread;
    std::weak_ptr<Connection> conn;  ///< stop() shutdowns live readers
  };
  std::mutex conns_mu;
  std::uint64_t next_conn_id = 0;
  std::unordered_map<std::uint64_t, ConnSlot> conn_slots;
  std::vector<std::uint64_t> finished_conns;

  mutable std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::map<std::string, TenantQueue> tenants;
  /// Pass of the most recently picked job. New tenants join here, and an
  /// idle tenant's pass is clamped up to here when it re-enters, so idle
  /// time never banks into a burst credit.
  double virtual_time = 0.0;

  std::atomic<bool> stopping{false};        ///< reject new work, drain
  std::atomic<bool> stop_requested{false};  ///< a "shutdown" envelope asked
  std::mutex state_mu;
  std::condition_variable state_cv;
  bool started = false;
  bool stopped = false;

  // Registry-backed lifetime counters + latency histograms (set in the
  // constructor; the registry owns them and outlives Impl via `engine`).
  obs::Counter* connections = nullptr;
  obs::Counter* requests = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* protocol_errors = nullptr;
  obs::Histogram* hit_seconds = nullptr;         ///< hit-path service time
  obs::Histogram* miss_seconds = nullptr;        ///< admission -> response
  obs::Histogram* queue_wait_seconds = nullptr;  ///< admission -> dequeue

  // ---- Per-plan trace flush (options.trace_dir non-empty) ----
  std::mutex trace_mu;
  std::uint64_t trace_seq = 0;

  /// Drains the trace ring into `<trace_dir>/plan-<seq>.trace.json`.
  /// Called after every completed miss and at stop(); no-op when tracing
  /// is not directed at a directory.
  void flush_trace() {
    if (options.trace_dir.empty()) return;
    std::lock_guard<std::mutex> lock(trace_mu);
    std::vector<obs::TraceEvent> events;
    if (obs::drain_trace(&events) == 0) return;
    const std::string path = options.trace_dir + "/plan-" +
                             std::to_string(trace_seq++) + ".trace.json";
    std::ofstream out(path);
    out << obs::chrome_trace_json(events) << "\n";
  }

  // ---- Request-digest memo (performance only, never correctness) ----
  // request_to_json is byte-stable, so a warm client's repeats arrive as
  // the exact bytes seen before: digesting the request span and mapping
  // it to the content key lets the hit path skip re-parsing a model
  // description that can run tens of KB. Same bytes imply the same
  // probe flag and the same validation outcome, so the memo carries both
  // facts the keyed cache probe needs. A memo miss (new bytes, cleared
  // memo, exotic client formatting) just falls back to the full parse.
  struct DigestEntry {
    cache::RequestKey key;
    bool probe_feasible_batch = false;
  };
  static constexpr std::size_t kDigestMemoCap = 1 << 16;
  std::mutex digest_mu;
  std::unordered_map<util::Digest128, DigestEntry, util::Digest128Hash>
      digests;

  /// Releases the socket-path flock (closing the fd releases it).
  void release_lock() {
    if (lock_fd >= 0) {
      ::close(lock_fd);
      lock_fd = -1;
    }
  }

  /// Caller holds queue_mu.
  TenantQueue& tenant_queue(const std::string& tenant) {
    auto it = tenants.find(tenant);
    if (it == tenants.end()) {
      TenantQueue q;
      const auto w = options.tenant_weights.find(tenant);
      q.weight = w != options.tenant_weights.end() && w->second > 0
                     ? w->second
                     : 1.0;
      q.pass = virtual_time;
      it = tenants.emplace(tenant, std::move(q)).first;
    }
    return it->second;
  }

  void accept_loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      reap_connections();
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
      if (ready < 0 && errno != EINTR) break;
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      connections->inc();
      obs::emit_instant("pland.accept", "pland");
      auto conn = std::make_shared<Connection>(fd);
      std::lock_guard<std::mutex> lock(conns_mu);
      const std::uint64_t cid = next_conn_id++;
      ConnSlot& slot = conn_slots[cid];
      slot.conn = conn;
      slot.thread = std::thread([this, conn, cid] {
        serve_connection(conn);
        std::lock_guard<std::mutex> lock(conns_mu);
        finished_conns.push_back(cid);
      });
    }
  }

  /// Joins reader threads whose connections have closed and drops their
  /// slots. Joining happens outside conns_mu so a concurrently-finishing
  /// reader (whose last act takes the mutex) is never held up.
  void reap_connections() {
    std::vector<std::thread> done;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      if (finished_conns.empty()) return;
      for (const std::uint64_t cid : finished_conns) {
        const auto it = conn_slots.find(cid);
        if (it == conn_slots.end()) continue;  // stop() already took it
        done.push_back(std::move(it->second.thread));
        conn_slots.erase(it);
      }
      finished_conns.clear();
    }
    for (auto& t : done)
      if (t.joinable()) t.join();
  }

  void serve_connection(const std::shared_ptr<Connection>& conn) {
    std::string payload;
    while (!stopping.load(std::memory_order_relaxed)) {
      const ReadStatus status = read_frame(conn->fd, &payload);
      if (status == ReadStatus::kEof) return;
      if (status != ReadStatus::kOk) {
        protocol_errors->inc();
        return;  // length framing is unrecoverable once desynced
      }
      std::int64_t id = 0;
      try {
        obs::Span parse_span("frame.parse", "pland");
        // A plan frame's bytes are dominated by the embedded request (a
        // model description runs tens of KB). Scan its span out first and
        // parse the envelope with the request hollowed to null, so the
        // hit path pays a digest of the span instead of a DOM of the
        // model. When the scan demurs, the full parse recovers the span.
        std::string_view request_span =
            util::json::scan_member(payload, "request");
        std::string hollowed;
        if (!request_span.empty()) {
          const auto off =
              static_cast<std::size_t>(request_span.data() - payload.data());
          hollowed.reserve(payload.size() - request_span.size() + 4);
          hollowed.append(payload, 0, off);
          hollowed.append("null");
          hollowed.append(payload, off + request_span.size(),
                          std::string::npos);
        }
        const Value root =
            util::json::parse(hollowed.empty() ? payload : hollowed);
        if (request_span.empty() && root.has("request"))
          request_span = root.at("request").span(payload);
        if (root.at("v").as_int() != kProtocolVersion)
          throw std::runtime_error("unsupported protocol version");
        id = root.at("id").as_int();
        const std::string& type = root.at("type").as_string();
        parse_span.end();
        if (type == "ping") {
          conn->send(simple_response("pong", id));
        } else if (type == "stats") {
          Writer w;
          w.begin_object();
          w.key("v"); w.value(kProtocolVersion);
          w.key("type"); w.value("stats");
          w.key("id"); w.value(id);
          w.key("ok"); w.value(true);
          w.key("stats"); w.raw(collect_stats().to_json());
          w.end_object();
          conn->send(w.take());
        } else if (type == "metrics") {
          // The registry's deterministic JSON snapshot: engine + cache +
          // daemon instruments in one document (DESIGN.md §15).
          Writer w;
          w.begin_object();
          w.key("v"); w.value(kProtocolVersion);
          w.key("type"); w.value("metrics");
          w.key("id"); w.value(id);
          w.key("ok"); w.value(true);
          w.key("metrics"); w.raw(engine->metrics()->snapshot_json());
          w.end_object();
          conn->send(w.take());
        } else if (type == "shutdown") {
          conn->send(simple_response("shutdown", id));
          stop_requested.store(true, std::memory_order_relaxed);
          state_cv.notify_all();
          return;
        } else if (type == "plan") {
          if (request_span.empty())
            throw std::runtime_error("plan frame without a request");
          handle_plan(conn, id, root, request_span);
        } else if (type == "calibrate") {
          if (!root.has("table"))
            throw std::runtime_error("calibrate frame without a table");
          handle_calibrate(conn, id, root.at("table").is_null()
                                          ? std::string_view()
                                          : root.at("table").span(payload));
        } else {
          throw std::runtime_error("unknown request type '" + type + "'");
        }
      } catch (const std::exception& ex) {
        protocol_errors->inc();
        if (!conn->send(protocol_error_response(id, ex.what()))) return;
      }
    }
  }

  void handle_plan(const std::shared_ptr<Connection>& conn, std::int64_t id,
                   const Value& root, std::string_view request_span) {
    requests->inc();
    const std::uint64_t t0 = obs::trace_now_us();
    const std::string tenant =
        root.has("tenant") ? root.at("tenant").as_string() : std::string();

    // ---- Memoized hit path: bytes seen before skip the parse ----
    const util::Digest128 digest = util::digest128(request_span);
    {
      std::optional<DigestEntry> memo;
      {
        std::lock_guard<std::mutex> lock(digest_mu);
        const auto it = digests.find(digest);
        if (it != digests.end()) memo = it->second;
      }
      if (memo) {
        // (engine->try_cached emits the "engine.cache_lookup" span.)
        if (auto outcome =
                engine->try_cached(memo->key, memo->probe_feasible_batch)) {
          {
            std::lock_guard<std::mutex> lock(queue_mu);
            tenant_queue(tenant).hits++;
          }
          conn->send(plan_response(id, std::move(*outcome)));
          hit_seconds->observe(
              static_cast<double>(obs::trace_now_us() - t0) * 1e-6);
          obs::emit_complete("pland.hit", "pland", t0, obs::trace_now_us());
          return;
        }
        // Memoized but not cached (e.g. evicted): take the queue like any
        // first-sight request.
      }
    }

    // ---- First sight: admission control, then the tenant's queue ----
    // The model-sized work (parse, keying, search) belongs to the plan
    // workers; this thread only decides admission and hands the bytes on.
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      TenantQueue& q = tenant_queue(tenant);
      if (q.jobs.size() >= options.max_queue_per_tenant) {
        q.shed++;
        shed->inc();
        obs::emit_instant("pland.shed", "pland");
        api::PlanError e;
        e.code = api::PlanErrorCode::kOverloaded;
        e.message = "tenant '" + tenant + "' planning queue is full (" +
                    std::to_string(q.jobs.size()) + " queued); retry later";
        e.retry_after = options.retry_after;
        conn->send(plan_response(id, std::move(e)));
        return;
      }
      // A tenant whose queue drained keeps its last pass, which falls
      // behind virtual_time while it idles. Clamp on re-entry: idle time
      // must never bank into a burst credit that would serve this tenant
      // exclusively until its stale pass catches up.
      if (q.jobs.empty()) q.pass = std::max(q.pass, virtual_time);
      q.admitted++;
      q.jobs.push_back(Job{conn, id, std::string(request_span), digest,
                           tenant, obs::trace_now_us()});
    }
    queue_cv.notify_one();
  }

  /// Installs (empty span / JSON null clears) a CalibrationTable on the
  /// fronted engine, fleet-wide at this node: every subsequent request is
  /// keyed under the new table's hash and searched against the calibrated
  /// device; plans cached under the previous hash become repair seeds.
  /// The digest memo maps wire bytes to keys computed under the OLD hash,
  /// so it is flushed — entries rebuild lazily at the new hash.
  void handle_calibrate(const std::shared_ptr<Connection>& conn,
                        std::int64_t id, std::string_view table_span) {
    std::shared_ptr<const calib::CalibrationTable> table;
    if (!table_span.empty())
      table = std::make_shared<const calib::CalibrationTable>(
          calib::CalibrationTable::from_json(table_span));  // throws -> error
    engine->set_calibration(table);
    {
      std::lock_guard<std::mutex> lock(digest_mu);
      digests.clear();
    }
    Writer w;
    w.begin_object();
    w.key("v"); w.value(kProtocolVersion);
    w.key("type"); w.value("calibrate");
    w.key("id"); w.value(id);
    w.key("ok"); w.value(true);
    w.key("calibration"); w.value(engine->calibration_hash());
    w.key("calibration_version");
    w.value(table ? static_cast<std::int64_t>(table->version)
                  : std::int64_t{0});
    w.end_object();
    conn->send(w.take());
  }

  void worker_loop() {
    // Plan workers run at SCHED_IDLE: CFS preempts an idle-policy task
    // UNCONDITIONALLY when a normal task wakes, so a connection thread
    // answering a warm hit never waits out the wakeup-preemption
    // granularity (a few ms) behind a long anneal — that granularity is
    // exactly the cross-tenant p99 tail on a single core, and niceness
    // alone cannot remove it. Searches still run at full speed whenever
    // warm traffic sleeps. Per-thread (pid 0 = calling thread); the nice
    // delta is kept as a fallback for kernels where the policy switch is
    // refused. Best-effort: failure means less isolation, not less
    // service.
    if (options.worker_nice > 0) {
      struct sched_param sp = {};
      if (::sched_setscheduler(0, SCHED_IDLE, &sp) != 0)
        ::sched_setscheduler(0, SCHED_BATCH, &sp);
      ::setpriority(PRIO_PROCESS, 0,
                    ::getpriority(PRIO_PROCESS, 0) + options.worker_nice);
    }
    for (;;) {
      Job job;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [this] {
          if (stopping.load(std::memory_order_relaxed)) return true;
          for (const auto& [name, q] : tenants)
            if (!q.jobs.empty()) return true;
          return false;
        });
        if (stopping.load(std::memory_order_relaxed)) return;
        TenantQueue* pick = nullptr;
        for (auto& [name, q] : tenants)
          if (!q.jobs.empty() && (!pick || q.pass < pick->pass)) pick = &q;
        job = std::move(pick->jobs.front());
        pick->jobs.pop_front();
        virtual_time = pick->pass;
        pick->pass += 1.0 / pick->weight;
      }
      // Queue wait = admission to dequeue; the trace slice is emitted
      // here (worker thread) from the enqueue timestamp recorded on the
      // connection thread — the documented cross-thread emit_complete
      // shape.
      const std::uint64_t dequeue_us = obs::trace_now_us();
      queue_wait_seconds->observe(
          static_cast<double>(dequeue_us - job.enqueue_us) * 1e-6);
      obs::emit_complete("pland.queue_wait", "pland", job.enqueue_us,
                         dequeue_us);
      obs::Span miss_span("pland.plan_miss", "pland");
      // The request artifact parses from its exact wire bytes — the same
      // bytes request_io's round-trip covers — here at batch priority,
      // never on a connection thread.
      obs::Span req_parse_span("request.parse", "pland");
      auto parsed = api::request_from_json(job.raw_request);
      req_parse_span.end();
      if (!parsed) {
        {
          std::lock_guard<std::mutex> lock(queue_mu);
          tenants[job.tenant].completed++;
        }
        job.conn->send(plan_response(job.id, std::move(parsed).error()));
        miss_span.end();
        flush_trace();
        continue;
      }
      const api::PlanRequest request = std::move(parsed).value();
      {
        std::lock_guard<std::mutex> lock(digest_mu);
        if (digests.size() >= kDigestMemoCap) digests.clear();
        // Keyed under the engine's ACTIVE calibration (key_for, not the
        // bare request_key): a calibrate verb flushes this memo, so every
        // surviving entry agrees with the hash the engine keys by.
        digests.emplace(job.digest,
                        DigestEntry{engine->key_for(request),
                                    request.probe_feasible_batch});
      }
      // Cached answers (e.g. a warm disk store the memo hasn't seen yet)
      // settle here without a search; otherwise the search runs on this
      // worker thread — in-process single-flight collapses identical
      // concurrent misses, DiskStore claim files collapse them
      // fleet-wide.
      auto outcome = engine->try_cached(request);
      if (!outcome) outcome = engine->plan(request);
      // Counted BEFORE the response goes out: a client that reacts to its
      // plan by reading stats must observe the completion.
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        tenants[job.tenant].completed++;
      }
      {
        obs::Span respond_span("pland.respond", "pland");
        job.conn->send(plan_response(job.id, std::move(*outcome)));
      }
      miss_seconds->observe(
          static_cast<double>(obs::trace_now_us() - job.enqueue_us) * 1e-6);
      miss_span.end();
      flush_trace();
    }
  }

  DaemonStats collect_stats() const {
    DaemonStats s;
    // Effects before causes (counters increment with release, read here
    // with acquire): shed/protocol_errors before requests before
    // connections, so `shed <= requests <= connections` holds in every
    // snapshot even while a storm is incrementing concurrently.
    s.protocol_errors = protocol_errors->value();
    s.shed = shed->value();
    s.requests = requests->value();
    s.connections = connections->value();
    s.engine = engine->stats();
    s.cache = engine->cache_stats();
    if (cache::PlanCache* cache = engine->plan_cache()) {
      if (cache::DiskStore* disk = cache->disk()) {
        const auto claims = disk->claim_stats();
        s.claims_won = claims.claims_won;
        s.claims_lost = claims.claims_lost;
      }
    }
    s.calibration = engine->calibration_hash();
    if (const auto table = engine->calibration())
      s.calibration_version = table->version;
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      for (const auto& [name, q] : tenants) {
        TenantStats t;
        t.tenant = name;
        t.admitted = q.admitted;
        t.completed = q.completed;
        t.shed = q.shed;
        t.hits = q.hits;
        t.queue_depth = q.jobs.size();
        s.tenants.push_back(std::move(t));
      }
    }
    return s;
  }
};

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      engine_(api::Engine::create(options_.engine)),
      impl_(std::make_unique<Impl>(options_, engine_)) {}

Daemon::~Daemon() { stop(); }

bool Daemon::running() const {
  std::lock_guard<std::mutex> lock(impl_->state_mu);
  return impl_->started && !impl_->stopped;
}

bool Daemon::start() {
  sockaddr_un addr{};
  if (!fill_addr(options_.socket_path, &addr)) return false;

  // The probe-unlink-bind sequence below is racy on its own: two daemons
  // starting together can both see the probe refused, both unlink, and
  // the second bind steals the path from the first. An exclusive flock on
  // a sidecar lock file, held for the daemon's lifetime, serializes the
  // whole sequence. Best-effort on open failure (bind would fail on such
  // a filesystem anyway); a flock conflict is a definitive "another
  // daemon owns this path".
  const std::string lock_path = options_.socket_path + ".lock";
  impl_->lock_fd =
      ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0600);
  if (impl_->lock_fd >= 0 &&
      ::flock(impl_->lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(impl_->lock_fd);
    impl_->lock_fd = -1;
    return false;  // another daemon is starting or serving here
  }

  // A socket file can outlive its daemon (crash, SIGKILL). Probe it: a
  // connectable path means a live daemon owns it (e.g. one started before
  // lock files existed) — refuse; a refused connection means it is stale
  // — reclaim it.
  int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
        0) {
      ::close(probe);
      impl_->release_lock();
      return false;  // live daemon
    }
    ::close(probe);
  }
  ::unlink(options_.socket_path.c_str());

  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (impl_->listen_fd < 0) {
    impl_->release_lock();
    return false;
  }
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(impl_->listen_fd, 64) != 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
    impl_->release_lock();
    return false;
  }

  {
    std::lock_guard<std::mutex> lock(impl_->state_mu);
    impl_->started = true;
  }

  if (!options_.trace_dir.empty()) {
    ::mkdir(options_.trace_dir.c_str(), 0755);  // best-effort
    obs::discard_trace();  // a clean ring: no pre-start events in plan-0
    obs::set_tracing_enabled(true);
  }

  std::size_t n = options_.num_workers;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = std::clamp<std::size_t>(hw == 0 ? 2 : hw, 2, 8);
  }
  impl_->worker_threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    impl_->worker_threads.emplace_back(
        [impl = impl_.get()] { impl->worker_loop(); });
  impl_->accept_thread =
      std::thread([impl = impl_.get()] { impl->accept_loop(); });
  return true;
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->state_mu);
    if (!impl_->started || impl_->stopped) {
      impl_->stopped = true;
      impl_->state_cv.notify_all();
      return;
    }
  }
  impl_->stopping.store(true, std::memory_order_relaxed);
  impl_->queue_cv.notify_all();

  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  ::unlink(options_.socket_path.c_str());

  // Wake blocked readers: shutdown() forces their read_frame to return.
  // Then join every reader still tracked — finished ones the accept loop
  // had not reaped yet, and live ones the shutdown just woke.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(impl_->conns_mu);
    for (auto& [cid, slot] : impl_->conn_slots) {
      if (auto conn = slot.conn.lock()) ::shutdown(conn->fd, SHUT_RDWR);
      readers.push_back(std::move(slot.thread));
    }
    impl_->conn_slots.clear();
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();
  for (auto& t : impl_->worker_threads)
    if (t.joinable()) t.join();

  // Settle misses still queued: their clients are owed a response. The
  // sends race the SHUT_RDWR above; failures are ignored — the client
  // sees kUnavailable or a closed socket either way.
  std::vector<Impl::Job> leftover;
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mu);
    for (auto& [name, q] : impl_->tenants)
      while (!q.jobs.empty()) {
        leftover.push_back(std::move(q.jobs.front()));
        q.jobs.pop_front();
      }
  }
  for (auto& job : leftover) {
    api::PlanError e;
    e.code = api::PlanErrorCode::kUnavailable;
    e.message = "daemon shutting down before the search started";
    job.conn->send(plan_response(job.id, std::move(e)));
  }

  if (!options_.trace_dir.empty()) {
    obs::set_tracing_enabled(false);
    impl_->flush_trace();  // tail events with no completed miss after them
  }

  {
    std::lock_guard<std::mutex> lock(impl_->state_mu);
    impl_->stopped = true;
  }
  impl_->state_cv.notify_all();
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(impl_->state_mu);
    // Polling (not pure wait) so an async-signal-safe stop request — a
    // bare atomic store from a signal handler, no notify — still lands.
    while (!impl_->stopped &&
           !impl_->stop_requested.load(std::memory_order_relaxed)) {
      impl_->state_cv.wait_for(lock, std::chrono::milliseconds(100));
    }
    if (impl_->stopped) return;
  }
  stop();
}

void Daemon::request_stop_from_signal() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
}

DaemonStats Daemon::stats() const { return impl_->collect_stats(); }

std::size_t Daemon::open_connections() const {
  std::lock_guard<std::mutex> lock(impl_->conns_mu);
  return impl_->conn_slots.size();
}

}  // namespace karma::pland
