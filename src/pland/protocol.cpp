#include "src/pland/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace karma::pland {

namespace {

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that hung up mid-response must surface as an
    // EPIPE return, never a process-killing SIGPIPE — one disconnecting
    // client cannot be allowed to take down the multi-tenant daemon (or a
    // client library's host process).
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `size` bytes. Returns bytes read (== size on success; 0 =
/// clean EOF before the first byte; anything else = truncated/error).
std::size_t read_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return got;
    }
    if (n == 0) return got;  // peer closed
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto len = static_cast<std::uint32_t>(payload.size());
  // Little-endian by construction, independent of host order.
  const char prefix[4] = {
      static_cast<char>(len & 0xff), static_cast<char>((len >> 8) & 0xff),
      static_cast<char>((len >> 16) & 0xff),
      static_cast<char>((len >> 24) & 0xff)};
  return write_all(fd, prefix, 4) &&
         write_all(fd, payload.data(), payload.size());
}

ReadStatus read_frame(int fd, std::string* payload) {
  unsigned char prefix[4];
  const std::size_t got =
      read_all(fd, reinterpret_cast<char*>(prefix), sizeof prefix);
  if (got == 0) return ReadStatus::kEof;
  if (got != sizeof prefix) return ReadStatus::kError;
  const std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                            (static_cast<std::uint32_t>(prefix[1]) << 8) |
                            (static_cast<std::uint32_t>(prefix[2]) << 16) |
                            (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (len > kMaxFrameBytes) return ReadStatus::kTooLarge;
  payload->resize(len);
  if (read_all(fd, payload->data(), len) != len) return ReadStatus::kError;
  return ReadStatus::kOk;
}

}  // namespace karma::pland
