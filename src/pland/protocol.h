// karma-pland wire protocol: length-prefixed JSON frames over a unix
// domain socket (DESIGN.md §12).
//
// Framing is deliberately minimal: a 4-byte little-endian unsigned payload
// length, then exactly that many bytes of UTF-8 JSON. One frame = one
// envelope. The envelopes carry the repo's EXISTING versioned artifacts —
// a plan request is request_io's request JSON, a plan is plan_io's v2
// artifact, an error is request_io's error JSON — spliced in verbatim
// (util::json::Writer::raw), so the bytes a client receives for a plan
// are byte-identical to the leader's Plan::to_json(). The storm test's
// "byte-identical artifacts fleet-wide" assertion rides on that.
//
// Request envelopes (client -> daemon), all with a caller-chosen `id`
// echoed in the response so clients may pipeline:
//   {"v":1,"type":"plan","id":N,"tenant":"...","request":{...}}
//   {"v":1,"type":"stats","id":N}
//   {"v":1,"type":"metrics","id":N}
//   {"v":1,"type":"ping","id":N}
//   {"v":1,"type":"shutdown","id":N}
//   {"v":1,"type":"calibrate","id":N,"table":{...}}   (null table clears)
//
// Response envelopes (daemon -> client):
//   {"v":1,"type":"plan","id":N,"ok":true,"plan":{...}}
//   {"v":1,"type":"plan","id":N,"ok":false,"error":{...}}
//   {"v":1,"type":"stats","id":N,"ok":true,"stats":{...}}
//   {"v":1,"type":"metrics","id":N,"ok":true,"metrics":{...}}
//   {"v":1,"type":"pong","id":N,"ok":true}
//   {"v":1,"type":"shutdown","id":N,"ok":true}
//   {"v":1,"type":"calibrate","id":N,"ok":true,
//    "calibration":"<hash>","calibration_version":V}
//   {"v":1,"type":"error","id":N,"ok":false,"error":{...}}   (protocol)
//
// The metrics `metrics` value is the engine registry's deterministic
// snapshot (obs::Registry::snapshot_json, DESIGN.md §15): every counter,
// gauge, and latency histogram in the process — engine, cache, and
// daemon instruments in one document.
//
// The calibrate `table` value is a calib::CalibrationTable JSON artifact
// (table.h). Installing one re-keys every request under the table's
// content hash engine-wide — stale cached plans become repair seeds
// (calib/repair.h) — and flushes the daemon's request-digest memo.
//
// Frame reads/writes are blocking with EINTR retry; a frame larger than
// kMaxFrameBytes is a protocol error (the daemon answers one "error"
// envelope where it can, then closes — resynchronizing a corrupt length
// prefix is not possible).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace karma::pland {

inline constexpr int kProtocolVersion = 1;

/// Hard bound on one frame's payload. Plan artifacts for the paper's
/// models weigh tens of KB; 64 MiB leaves orders of magnitude of headroom
/// while keeping a garbled length prefix from looking like a 4 GiB
/// allocation request.
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;

/// Writes one frame (length prefix + payload). Returns false on any write
/// failure, including a payload over kMaxFrameBytes. Thread-compatible:
/// callers serialize writes to one fd themselves.
bool write_frame(int fd, std::string_view payload);

enum class ReadStatus {
  kOk,        ///< one whole frame read into *payload
  kEof,       ///< clean close before any byte of a frame
  kError,     ///< read failure or close mid-frame
  kTooLarge,  ///< length prefix exceeds kMaxFrameBytes (do not continue)
};

/// Reads one whole frame. Blocks until the frame completes, the peer
/// closes, or an error occurs.
ReadStatus read_frame(int fd, std::string* payload);

}  // namespace karma::pland
